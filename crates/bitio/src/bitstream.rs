//! MSB-first bit streams over in-memory byte buffers.
//!
//! The writer appends bits into a `Vec<u8>`; the reader consumes bits from a
//! `&[u8]`. Bits within a byte are ordered most-significant first so that the
//! byte sequence reads like the bit sequence written, which keeps on-disk
//! dumps inspectable with `xxd`.

use crate::{BitError, Result};

/// Append-only bit sink backed by a `Vec<u8>`.
///
/// Bits are packed MSB-first. [`BitWriter::finish`] pads the final partial
/// byte with zero bits and returns the underlying buffer together with the
/// exact bit length, so readers never confuse padding with payload.
///
/// # Examples
/// ```
/// use wg_bitio::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bit(true);
/// let (bytes, bits) = w.finish();
/// assert_eq!(bits, 4);
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert!(r.read_bit().unwrap());
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits of the final byte already used (0..8). When 0 the last byte of
    /// `buf` is complete (or `buf` is empty).
    partial_bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with capacity for roughly `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits / 8 + 1),
            partial_bits: 0,
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        if self.partial_bits == 0 {
            self.buf.len() as u64 * 8
        } else {
            (self.buf.len() as u64 - 1) * 8 + u64::from(self.partial_bits)
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.push(0);
        }
        if bit {
            if let Some(last) = self.buf.last_mut() {
                *last |= 1 << (7 - self.partial_bits);
            }
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Appends the low `n` bits of `value`, most significant of those first.
    ///
    /// # Panics
    /// Panics if `n > 64`, or if `value` has bits set above position `n`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        debug_assert!(
            n == 64 || value < (1u64 << n),
            "value {value} does not fit in {n} bits"
        );
        // Write in chunks that fit the current partial byte.
        let mut remaining = n;
        while remaining > 0 {
            if self.partial_bits == 0 {
                self.buf.push(0);
            }
            let space = 8 - self.partial_bits;
            let take = space.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            if let Some(last) = self.buf.last_mut() {
                *last |= chunk << (space - take);
            }
            self.partial_bits = (self.partial_bits + take) % 8;
            remaining -= take;
        }
    }

    /// Appends `n` zero bits.
    #[inline]
    pub fn write_zeros(&mut self, mut n: u64) {
        while n >= 64 {
            self.write_bits(0, 64);
            n -= 64;
        }
        if n > 0 {
            self.write_bits(0, n as u32);
        }
    }

    /// Appends every bit produced by another finished writer.
    pub fn append(&mut self, bytes: &[u8], bit_len: u64) {
        let full = (bit_len / 8) as usize;
        for &b in &bytes[..full] {
            self.write_bits(u64::from(b), 8);
        }
        let rem = (bit_len % 8) as u32;
        if rem > 0 {
            self.write_bits(u64::from(bytes[full] >> (8 - rem)), rem);
        }
    }

    /// Pads the final byte with zeros and returns `(bytes, exact_bit_len)`.
    pub fn finish(self) -> (Vec<u8>, u64) {
        let bits = self.bit_len();
        (self.buf, bits)
    }

    /// Borrowing view of the bytes written so far (final byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Bit-granular cursor over a byte slice.
///
/// The reader tracks its position in bits and fails with
/// [`BitError::UnexpectedEof`] when asked to read past `bit_len`.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Current position in bits.
    pos: u64,
    /// Total number of valid bits (may be less than `buf.len() * 8`).
    bit_len: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over all bits of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            bit_len: buf.len() as u64 * 8,
        }
    }

    /// Creates a reader over the first `bit_len` bits of `buf`.
    ///
    /// # Panics
    /// Panics if `bit_len` exceeds the buffer size in bits.
    pub fn with_bit_len(buf: &'a [u8], bit_len: u64) -> Self {
        assert!(bit_len <= buf.len() as u64 * 8, "bit_len exceeds buffer");
        Self {
            buf,
            pos: 0,
            bit_len,
        }
    }

    /// Current position in bits from the start of the stream.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> u64 {
        self.bit_len - self.pos
    }

    /// Repositions the cursor to an absolute bit offset.
    pub fn seek(&mut self, bit_pos: u64) -> Result<()> {
        if bit_pos > self.bit_len {
            return Err(BitError::UnexpectedEof { position: bit_pos });
        }
        self.pos = bit_pos;
        Ok(())
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        if self.pos >= self.bit_len {
            return Err(BitError::UnexpectedEof { position: self.pos });
        }
        let byte = self.buf[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Ok(bit == 1)
    }

    /// Reads `n` bits MSB-first into the low bits of a `u64`.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.pos + u64::from(n) > self.bit_len {
            return Err(BitError::UnexpectedEof { position: self.pos });
        }
        let mut out = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            let byte = self.buf[(self.pos / 8) as usize];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(remaining);
            let chunk = (u64::from(byte) >> (avail - take)) & ((1u64 << take) - 1);
            out = (out << take) | chunk;
            self.pos += u64::from(take);
            remaining -= take;
        }
        Ok(out)
    }

    /// Counts and consumes consecutive zero bits up to (not including) the
    /// next one bit, then consumes that one bit. Returns the zero count.
    ///
    /// This is the primitive behind unary decoding.
    #[inline]
    pub fn read_unary(&mut self) -> Result<u64> {
        let mut count = 0u64;
        loop {
            if self.pos >= self.bit_len {
                return Err(BitError::UnexpectedEof { position: self.pos });
            }
            // Fast path: inspect the rest of the current byte at once.
            let byte = self.buf[(self.pos / 8) as usize];
            let offset = (self.pos % 8) as u32;
            let window = byte << offset;
            if window == 0 {
                let advance = u64::from(8 - offset).min(self.bit_len - self.pos);
                count += advance;
                self.pos += advance;
                continue;
            }
            let zeros = u64::from(window.leading_zeros());
            let usable = (self.bit_len - self.pos).min(u64::from(8 - offset));
            if zeros >= usable {
                self.pos += usable;
                return Err(BitError::UnexpectedEof { position: self.pos });
            }
            count += zeros;
            self.pos += zeros + 1; // consume the terminating 1 bit
            return Ok(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 9);
        let mut r = BitReader::with_bit_len(&bytes, bits);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn multi_bit_writes_cross_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101, 4);
        w.write_bits(0b10110011101, 11);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 80);
        let mut r = BitReader::with_bit_len(&bytes, bits);
        assert_eq!(r.read_bits(4).unwrap(), 0b1101);
        assert_eq!(r.read_bits(11).unwrap(), 0b10110011101);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
        w.write_bit(true);
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 1);
    }

    #[test]
    fn unary_fast_path_handles_long_runs() {
        let mut w = BitWriter::new();
        w.write_zeros(1000);
        w.write_bit(true);
        w.write_bits(0b11, 2);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        assert_eq!(r.read_unary().unwrap(), 1000);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn unary_eof_is_error_not_panic() {
        let mut w = BitWriter::new();
        w.write_zeros(13);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        assert!(matches!(
            r.read_unary(),
            Err(BitError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn seek_and_position_agree() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF, 32);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        r.seek(16).unwrap();
        assert_eq!(r.read_bits(16).unwrap(), 0xBEEF);
        assert!(r.seek(33).is_err());
        r.seek(0).unwrap();
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn append_preserves_bit_sequence() {
        let mut a = BitWriter::new();
        a.write_bits(0b10110, 5);
        let (ab, al) = a.finish();
        let mut b = BitWriter::new();
        b.write_bits(0b111, 3);
        b.append(&ab, al);
        let (bb, bl) = b.finish();
        assert_eq!(bl, 8);
        let mut r = BitReader::with_bit_len(&bb, bl);
        assert_eq!(r.read_bits(3).unwrap(), 0b111);
        assert_eq!(r.read_bits(5).unwrap(), 0b10110);
    }

    #[test]
    fn reader_respects_explicit_bit_len() {
        let bytes = [0xFF, 0xFF];
        let mut r = BitReader::with_bit_len(&bytes, 3);
        assert_eq!(r.read_bits(3).unwrap(), 0b111);
        assert!(r.read_bit().is_err());
    }
}
