//! Boldi–Vigna ζ codes.
//!
//! ζ_k codes are the family introduced for WebGraph, tuned to the
//! power-law gap distributions of Web adjacency lists: they interpolate
//! between γ (ζ₁ = γ, bit for bit) and flatter codes that spend fewer
//! bits on the mid-range values that dominate Web gaps. The S-Node
//! pipeline selects them per list class through `CodecConfig`; the
//! ablation harness prices each choice in bits/edge and decode ns/edge.
//!
//! Definition (for `x ≥ 0`, coding `v = x + 1`): with `h` the largest
//! integer such that `2^{hk} ≤ v`, write `h + 1` in unary, then
//! `v − 2^{hk}` in minimal binary over `[0, 2^{(h+1)k} − 2^{hk})`.
//!
//! The top bucket is truncated to the `u64` domain: when
//! `(h+1)·k ≥ 64` the remainder is coded in minimal binary over
//! `[0, 2^64 − 2^{hk})` instead, so every `x < u64::MAX` round-trips
//! exactly and no intermediate shift can overflow. Out-of-domain
//! arguments (`x = u64::MAX`, `k` outside `1..=16`) are reported as
//! [`BitError::Corrupt`], never a panic — these are codec paths (SN211).

use crate::{codes, BitError, BitReader, BitWriter, Result};

const K_RANGE: std::ops::RangeInclusive<u32> = 1..=16;

/// Size of bucket `h` (`2^{(h+1)k} − 2^{hk}`), truncated to the `u64`
/// domain: for the top bucket the upper bound is taken as `2^64`, so the
/// result is `2^64 − lo`, which always fits because `lo ≥ 1`.
fn bucket_size(lo: u64, h: u32, k: u32) -> u64 {
    let top = (u64::from(h) + 1) * u64::from(k);
    if top >= 64 {
        lo.wrapping_neg()
    } else {
        (1u64 << top) - lo
    }
}

/// Largest `h` with `2^{hk} ≤ v`. Always `h·k ≤ 63` for `v ≥ 1`.
fn h_of(v: u64, k: u32) -> u32 {
    debug_assert!(v >= 1);
    let bits = 63 - v.leading_zeros(); // floor(log2 v)
    bits / k
}

/// Rejects shrinking parameters outside `1..=16`.
fn check_k(k: u32) -> Result<()> {
    if K_RANGE.contains(&k) {
        Ok(())
    } else {
        Err(BitError::Corrupt {
            what: "zeta shrinking parameter out of range (must be 1..=16)",
        })
    }
}

/// Checks the coding arguments shared by length and write.
fn check_domain(x: u64, k: u32) -> Result<()> {
    check_k(k)?;
    if x == u64::MAX {
        return Err(BitError::Corrupt {
            what: "zeta value out of domain (0..=u64::MAX-1)",
        });
    }
    Ok(())
}

/// Number of bits of the ζ_k code for `x`.
///
/// Errors (instead of panicking) on `x = u64::MAX` or `k` outside
/// `1..=16`; total for every other input.
pub fn zeta_len(x: u64, k: u32) -> Result<u64> {
    check_domain(x, k)?;
    let v = x + 1;
    let h = h_of(v, k);
    let lo = 1u64 << (h * k);
    Ok((u64::from(h) + 1) + codes::minimal_binary_len(v - lo, bucket_size(lo, h, k)))
}

/// Writes `x` with ζ_k. Same domain (and errors) as [`zeta_len`].
pub fn write_zeta(w: &mut BitWriter, x: u64, k: u32) -> Result<()> {
    check_domain(x, k)?;
    let v = x + 1;
    let h = h_of(v, k);
    let lo = 1u64 << (h * k);
    codes::write_unary(w, u64::from(h));
    codes::write_minimal_binary(w, v - lo, bucket_size(lo, h, k));
    Ok(())
}

/// Reads a ζ_k-coded value.
pub fn read_zeta(r: &mut BitReader<'_>, k: u32) -> Result<u64> {
    check_k(k)?;
    let h = r.read_unary()?;
    // h·k ≤ 63 for any encodable value; anything larger is damage.
    if h > u64::from(63 / k) {
        return Err(BitError::Corrupt {
            what: "zeta exponent out of range",
        });
    }
    let h = h as u32;
    let lo = 1u64 << (h * k);
    let rem = codes::read_minimal_binary(r, bucket_size(lo, h, k))?;
    // lo + rem ≤ 2^64 − 1 because rem < bucket size ≤ 2^64 − lo.
    Ok(lo + rem - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64], k: u32) {
        let mut w = BitWriter::new();
        for &v in values {
            write_zeta(&mut w, v, k).unwrap();
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        for &v in values {
            assert_eq!(read_zeta(&mut r, k).unwrap(), v, "k={k} v={v}");
        }
        assert_eq!(r.remaining(), 0);
    }

    const SAMPLES: &[u64] = &[
        0,
        1,
        2,
        3,
        7,
        8,
        15,
        16,
        100,
        1000,
        65535,
        1 << 30,
        (1 << 45) + 12345,
    ];

    /// The domain edges: values whose buckets graze the 64-bit limit.
    const EDGES: &[u64] = &[
        (1 << 62) - 1,
        1 << 62,
        (1 << 63) - 2,
        (1 << 63) - 1,
        1 << 63,
        (1 << 63) + 1,
        u64::MAX - 2,
        u64::MAX - 1,
    ];

    #[test]
    fn round_trips_for_all_k() {
        for k in 1..=8 {
            round_trip(SAMPLES, k);
        }
    }

    #[test]
    fn round_trips_at_domain_edges_for_all_k() {
        // Regression: these used to overflow `1u64 << ((h+1)*k)` on the
        // write side and be rejected as corrupt on the read side.
        for k in 1..=16 {
            round_trip(EDGES, k);
        }
    }

    #[test]
    fn out_of_domain_value_is_an_error_not_a_panic() {
        // Regression: `write_zeta(u64::MAX)` used to `assert!`.
        for k in [1u32, 3, 16] {
            assert!(zeta_len(u64::MAX, k).is_err(), "k={k}");
            let mut w = BitWriter::new();
            assert!(write_zeta(&mut w, u64::MAX, k).is_err(), "k={k}");
            assert_eq!(w.bit_len(), 0, "failed write must not emit bits");
        }
    }

    #[test]
    fn out_of_range_k_is_an_error_not_a_panic() {
        // Regression: k outside 1..=16 used to `assert!` on all paths.
        for k in [0u32, 17, 64, u32::MAX] {
            assert!(zeta_len(5, k).is_err(), "k={k}");
            let mut w = BitWriter::new();
            assert!(write_zeta(&mut w, 5, k).is_err(), "k={k}");
            let data = [0xA5u8, 0x5A];
            let mut r = BitReader::new(&data);
            assert!(read_zeta(&mut r, k).is_err(), "k={k}");
        }
    }

    #[test]
    fn zeta1_equals_gamma_length() {
        // ζ₁ is exactly the γ code.
        for &v in SAMPLES {
            assert_eq!(zeta_len(v, 1).unwrap(), codes::gamma_len(v), "v={v}");
        }
    }

    #[test]
    fn zeta1_equals_gamma_bits() {
        // Not just the length: the emitted bit patterns are identical,
        // which is what lets CodecConfig treat γ as ζ₁.
        let mut zw = BitWriter::new();
        let mut gw = BitWriter::new();
        for &v in SAMPLES {
            write_zeta(&mut zw, v, 1).unwrap();
            codes::write_gamma(&mut gw, v);
        }
        assert_eq!(zw.finish(), gw.finish());
    }

    #[test]
    fn len_matches_encoding() {
        for k in [1u32, 2, 3, 5, 16] {
            for &v in SAMPLES.iter().chain(EDGES) {
                let mut w = BitWriter::new();
                write_zeta(&mut w, v, k).unwrap();
                assert_eq!(w.bit_len(), zeta_len(v, k).unwrap(), "k={k} v={v}");
            }
        }
    }

    #[test]
    fn zeta3_beats_gamma_on_midrange_values() {
        // The regime ζ was designed for: gaps in the hundreds.
        let total_gamma: u64 = (100..400u64).map(codes::gamma_len).sum();
        let total_zeta3: u64 = (100..400u64).map(|v| zeta_len(v, 3).unwrap()).sum();
        assert!(
            total_zeta3 < total_gamma,
            "zeta3 {total_zeta3} should beat gamma {total_gamma} on mid-range"
        );
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = BitWriter::new();
        write_zeta(&mut w, 123_456, 3).unwrap();
        let (bytes, bits) = w.finish();
        for cut in 1..bits {
            let mut r = BitReader::with_bit_len(&bytes, cut);
            assert!(read_zeta(&mut r, 3).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_never_panics() {
        let data = [0xFFu8, 0x00, 0xAA, 0x55];
        for k in 1..=4 {
            let mut r = BitReader::new(&data);
            while r.remaining() > 0 {
                if read_zeta(&mut r, k).is_err() {
                    break;
                }
            }
        }
    }
}
