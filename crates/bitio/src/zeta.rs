//! Boldi–Vigna ζ codes.
//!
//! ζ_k codes are the family introduced for WebGraph, tuned to the
//! power-law gap distributions of Web adjacency lists: they interpolate
//! between γ (ζ₁ = γ) and flatter codes that spend fewer bits on the
//! mid-range values that dominate Web gaps. Provided here because any
//! serious Web-graph codec library carries them; the S-Node pipeline can
//! adopt them as a drop-in for γ in its gap lists (the ablation harness
//! makes such swaps measurable).
//!
//! Definition (for `x ≥ 0`, coding `v = x + 1`): with `h` the largest
//! integer such that `2^{hk} ≤ v`, write `h + 1` in unary, then
//! `v − 2^{hk}` in minimal binary over `[0, 2^{(h+1)k} − 2^{hk})`.

use crate::{codes, BitError, BitReader, BitWriter, Result};

/// Number of bits of the ζ_k code for `x`.
pub fn zeta_len(x: u64, k: u32) -> u64 {
    assert!(
        (1..=16).contains(&k),
        "zeta shrinking parameter must be 1..=16"
    );
    let v = x + 1;
    let h = h_of(v, k);
    let lo = 1u64 << (h * k);
    let hi = 1u64 << ((h + 1) * k);
    (u64::from(h) + 1) + codes::minimal_binary_len(v - lo, hi - lo)
}

/// Writes `x` with ζ_k.
pub fn write_zeta(w: &mut BitWriter, x: u64, k: u32) {
    assert!(
        (1..=16).contains(&k),
        "zeta shrinking parameter must be 1..=16"
    );
    let v = x.wrapping_add(1);
    assert!(v != 0, "zeta domain is 0..=u64::MAX-1");
    let h = h_of(v, k);
    let lo = 1u64 << (h * k);
    let hi = 1u64 << ((h + 1) * k);
    codes::write_unary(w, u64::from(h));
    codes::write_minimal_binary(w, v - lo, hi - lo);
}

/// Reads a ζ_k-coded value.
pub fn read_zeta(r: &mut BitReader<'_>, k: u32) -> Result<u64> {
    assert!(
        (1..=16).contains(&k),
        "zeta shrinking parameter must be 1..=16"
    );
    let h = r.read_unary()?;
    if (h + 1) * u64::from(k) >= 64 {
        return Err(BitError::Corrupt {
            what: "zeta exponent out of range",
        });
    }
    let h = h as u32;
    let lo = 1u64 << (h * k);
    let hi = 1u64 << ((h + 1) * k);
    let rem = codes::read_minimal_binary(r, hi - lo)?;
    Ok(lo + rem - 1)
}

/// Largest `h` with `2^{hk} ≤ v`.
fn h_of(v: u64, k: u32) -> u32 {
    debug_assert!(v >= 1);
    let bits = 63 - v.leading_zeros(); // floor(log2 v)
    bits / k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64], k: u32) {
        let mut w = BitWriter::new();
        for &v in values {
            write_zeta(&mut w, v, k);
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        for &v in values {
            assert_eq!(read_zeta(&mut r, k).unwrap(), v, "k={k} v={v}");
        }
        assert_eq!(r.remaining(), 0);
    }

    const SAMPLES: &[u64] = &[
        0,
        1,
        2,
        3,
        7,
        8,
        15,
        16,
        100,
        1000,
        65535,
        1 << 30,
        (1 << 45) + 12345,
    ];

    #[test]
    fn round_trips_for_all_k() {
        for k in 1..=8 {
            round_trip(SAMPLES, k);
        }
    }

    #[test]
    fn zeta1_equals_gamma_length() {
        // ζ₁ is exactly the γ code.
        for &v in SAMPLES {
            assert_eq!(zeta_len(v, 1), codes::gamma_len(v), "v={v}");
        }
    }

    #[test]
    fn len_matches_encoding() {
        for k in [1u32, 2, 3, 5] {
            for &v in SAMPLES {
                let mut w = BitWriter::new();
                write_zeta(&mut w, v, k);
                assert_eq!(w.bit_len(), zeta_len(v, k), "k={k} v={v}");
            }
        }
    }

    #[test]
    fn zeta3_beats_gamma_on_midrange_values() {
        // The regime ζ was designed for: gaps in the hundreds.
        let total_gamma: u64 = (100..400u64).map(codes::gamma_len).sum();
        let total_zeta3: u64 = (100..400u64).map(|v| zeta_len(v, 3)).sum();
        assert!(
            total_zeta3 < total_gamma,
            "zeta3 {total_zeta3} should beat gamma {total_gamma} on mid-range"
        );
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = BitWriter::new();
        write_zeta(&mut w, 123_456, 3);
        let (bytes, bits) = w.finish();
        for cut in 1..bits {
            let mut r = BitReader::with_bit_len(&bytes, cut);
            assert!(read_zeta(&mut r, 3).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_never_panics() {
        let data = [0xFFu8, 0x00, 0xAA, 0x55];
        for k in 1..=4 {
            let mut r = BitReader::new(&data);
            while r.remaining() > 0 {
                if read_zeta(&mut r, k).is_err() {
                    break;
                }
            }
        }
    }
}
