//! Run-length coding of bit vectors.
//!
//! Reference encoding (§3.1 of the paper) represents the shared part of an
//! adjacency list as a bit vector over the reference list; §3.3 notes that
//! such vectors are stored with "run length encoding (RLE) bit vectors"
//! wherever that is smaller. This module provides both forms behind one
//! header bit, always choosing the cheaper encoding:
//!
//! * **Literal**: the raw bits.
//! * **RLE**: the first bit value, then γ-coded run lengths (each ≥ 1,
//!   stored as `run − 1`) alternating values until `len` bits are covered.

use crate::{codes, BitError, BitReader, BitWriter, Result};

/// Returns the size in bits of the RLE form of `bits` (excluding the 1-bit
/// format header).
pub fn rle_len(bits: &[bool]) -> u64 {
    if bits.is_empty() {
        return 1; // just the initial-value bit
    }
    let mut total = 1u64; // initial value bit
    let mut run = 1u64;
    for w in bits.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            total += codes::gamma_len(run - 1);
            run = 1;
        }
    }
    total += codes::gamma_len(run - 1);
    total
}

/// Size in bits of the encoded vector, including the header bit, under the
/// cheaper of the literal and RLE forms.
pub fn encoded_len(bits: &[bool]) -> u64 {
    1 + rle_len(bits).min(bits.len() as u64)
}

/// Writes `bits` using whichever of literal/RLE forms is smaller.
///
/// The length of the vector is **not** stored; the decoder must be told how
/// many bits to expect (callers always know it — it is the size of the
/// reference adjacency list).
pub fn write_bitvec(w: &mut BitWriter, bits: &[bool]) {
    let literal = bits.len() as u64;
    let rle = rle_len(bits);
    if rle < literal {
        w.write_bit(true); // RLE marker
        write_rle(w, bits);
    } else {
        w.write_bit(false); // literal marker
        for &b in bits {
            w.write_bit(b);
        }
    }
}

fn write_rle(w: &mut BitWriter, bits: &[bool]) {
    if bits.is_empty() {
        w.write_bit(false); // arbitrary initial value for an empty vector
        return;
    }
    w.write_bit(bits[0]);
    let mut run = 1u64;
    for i in 1..bits.len() {
        if bits[i] == bits[i - 1] {
            run += 1;
        } else {
            codes::write_gamma(w, run - 1);
            run = 1;
        }
    }
    codes::write_gamma(w, run - 1);
}

/// Reads a bit vector of exactly `len` bits written by [`write_bitvec`].
pub fn read_bitvec(r: &mut BitReader<'_>, len: usize) -> Result<Vec<bool>> {
    let mut out = Vec::with_capacity(len);
    let rle = r.read_bit()?;
    if !rle {
        for _ in 0..len {
            out.push(r.read_bit()?);
        }
        return Ok(out);
    }
    let mut value = r.read_bit()?;
    if len == 0 {
        return Ok(out);
    }
    while out.len() < len {
        let run = codes::read_gamma(r)? + 1;
        if out.len() + run as usize > len {
            return Err(BitError::Corrupt {
                what: "RLE run overruns declared bit-vector length",
            });
        }
        for _ in 0..run {
            out.push(value);
        }
        value = !value;
    }
    Ok(out)
}

/// Like [`read_bitvec`] but invokes `on_set(i)` for each set bit instead of
/// materialising the vector — the hot path when applying a reference
/// encoding copy-mask.
pub fn read_bitvec_set_positions(
    r: &mut BitReader<'_>,
    len: usize,
    mut on_set: impl FnMut(usize),
) -> Result<()> {
    let rle = r.read_bit()?;
    if !rle {
        for i in 0..len {
            if r.read_bit()? {
                on_set(i);
            }
        }
        return Ok(());
    }
    let mut value = r.read_bit()?;
    let mut i = 0usize;
    while i < len {
        let run = codes::read_gamma(r)? + 1;
        if i + run as usize > len {
            return Err(BitError::Corrupt {
                what: "RLE run overruns declared bit-vector length",
            });
        }
        if value {
            for j in i..i + run as usize {
                on_set(j);
            }
        }
        i += run as usize;
        value = !value;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(bits: &[bool]) {
        let mut w = BitWriter::new();
        write_bitvec(&mut w, bits);
        let (bytes, blen) = w.finish();
        assert_eq!(blen, encoded_len(bits), "encoded_len must match encoding");
        let mut r = BitReader::with_bit_len(&bytes, blen);
        let decoded = read_bitvec(&mut r, bits.len()).unwrap();
        assert_eq!(decoded, bits);
        assert_eq!(r.remaining(), 0);

        // Set-position streaming agrees with materialised form.
        let mut r = BitReader::with_bit_len(&bytes, blen);
        let mut set = Vec::new();
        read_bitvec_set_positions(&mut r, bits.len(), |i| set.push(i)).unwrap();
        let expect: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(set, expect);
    }

    #[test]
    fn empty_vector() {
        round_trip(&[]);
    }

    #[test]
    fn short_vectors() {
        round_trip(&[true]);
        round_trip(&[false]);
        round_trip(&[true, false, true]);
        round_trip(&[false, false, true, true, false]);
    }

    #[test]
    fn long_runs_choose_rle() {
        let mut bits = vec![true; 300];
        bits.extend(vec![false; 300]);
        bits.push(true);
        let mut w = BitWriter::new();
        write_bitvec(&mut w, &bits);
        assert!(
            w.bit_len() < 64,
            "601-bit vector with 3 runs should RLE to a few dozen bits, got {}",
            w.bit_len()
        );
        round_trip(&bits);
    }

    #[test]
    fn alternating_bits_choose_literal() {
        let bits: Vec<bool> = (0..128).map(|i| i % 2 == 0).collect();
        let mut w = BitWriter::new();
        write_bitvec(&mut w, &bits);
        assert_eq!(w.bit_len(), 1 + 128, "alternating vector must stay literal");
        round_trip(&bits);
    }

    #[test]
    fn pseudorandom_vectors_round_trip() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for len in [1usize, 7, 8, 9, 63, 64, 65, 500] {
            let bits: Vec<bool> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 62) & 1 == 1
                })
                .collect();
            round_trip(&bits);
        }
    }

    #[test]
    fn overrunning_rle_is_rejected() {
        // Manually craft an RLE stream whose run exceeds the declared length.
        let mut w = BitWriter::new();
        w.write_bit(true); // RLE marker
        w.write_bit(true); // initial value
        codes::write_gamma(&mut w, 9); // run of 10
        let (bytes, blen) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, blen);
        assert!(read_bitvec(&mut r, 5).is_err());
    }
}
