//! Gap coding of strictly ascending integer lists.
//!
//! Adjacency lists are stored sorted; §3.3 of the paper cites "gap encoding
//! adjacency lists" (Witten, Moffat & Bell) as one of its bit-level
//! techniques. A sorted list `a₀ < a₁ < … < a_{d−1}` is stored as
//! `γ(a₀)` followed by `γ(a_i − a_{i−1} − 1)` for each subsequent element.
//! The list length is written first (also γ-coded), so the format is
//! self-delimiting.

use crate::{codes, BitError, BitReader, BitWriter, Result};

/// Size in bits of [`write_gap_list`]'s output for `list`.
///
/// # Panics
/// Panics (debug) if the list is not strictly ascending.
pub fn gap_list_len(list: &[u64]) -> u64 {
    let mut total = codes::gamma_len(list.len() as u64);
    let mut prev: Option<u64> = None;
    for &x in list {
        total += match prev {
            None => codes::gamma_len(x),
            Some(p) => {
                debug_assert!(x > p, "gap list must be strictly ascending");
                codes::gamma_len(x - p - 1)
            }
        };
        prev = Some(x);
    }
    total
}

/// Writes a strictly ascending list with γ-coded gaps, preceded by its
/// γ-coded length.
///
/// # Panics
/// Panics if the list is not strictly ascending.
pub fn write_gap_list(w: &mut BitWriter, list: &[u64]) {
    codes::write_gamma(w, list.len() as u64);
    let mut prev: Option<u64> = None;
    for &x in list {
        match prev {
            None => codes::write_gamma(w, x),
            Some(p) => {
                assert!(x > p, "gap list must be strictly ascending");
                codes::write_gamma(w, x - p - 1);
            }
        }
        prev = Some(x);
    }
}

/// Reads a list written by [`write_gap_list`].
pub fn read_gap_list(r: &mut BitReader<'_>) -> Result<Vec<u64>> {
    let len = codes::read_gamma(r)?;
    let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
    read_gap_list_into(r, len, |x| out.push(x))?;
    Ok(out)
}

/// Reads `len` gap-coded values (the header must already have been consumed
/// by the caller) streaming each decoded value to `sink`.
pub fn read_gap_list_into(
    r: &mut BitReader<'_>,
    len: u64,
    mut sink: impl FnMut(u64),
) -> Result<()> {
    let mut prev: Option<u64> = None;
    for _ in 0..len {
        let g = codes::read_gamma(r)?;
        let x = match prev {
            None => g,
            Some(p) => {
                p.checked_add(g)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(BitError::Corrupt {
                        what: "gap list element overflows u64",
                    })?
            }
        };
        sink(x);
        prev = Some(x);
    }
    Ok(())
}

/// Reads only the length header of a gap list, leaving the cursor on the
/// first element.
pub fn read_gap_list_header(r: &mut BitReader<'_>) -> Result<u64> {
    codes::read_gamma(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(list: &[u64]) {
        let mut w = BitWriter::new();
        write_gap_list(&mut w, list);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, gap_list_len(list));
        let mut r = BitReader::with_bit_len(&bytes, bits);
        assert_eq!(read_gap_list(&mut r).unwrap(), list);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_list() {
        round_trip(&[]);
    }

    #[test]
    fn singleton_lists() {
        round_trip(&[0]);
        round_trip(&[42]);
        round_trip(&[u64::MAX - 1]);
    }

    #[test]
    fn dense_lists_compress_well() {
        let list: Vec<u64> = (100..200).collect();
        let mut w = BitWriter::new();
        write_gap_list(&mut w, &list);
        // 99 consecutive gaps of 0 cost 1 bit each.
        assert!(w.bit_len() < 99 + 32, "dense list should cost ~1 bit/gap");
        round_trip(&list);
    }

    #[test]
    fn sparse_lists_round_trip() {
        round_trip(&[3, 1000, 1_000_000, 1 << 40]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn non_ascending_list_panics() {
        let mut w = BitWriter::new();
        write_gap_list(&mut w, &[5, 5]);
    }

    #[test]
    fn streaming_matches_materialised() {
        let list = [2u64, 7, 9, 100, 101];
        let mut w = BitWriter::new();
        write_gap_list(&mut w, &list);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        let len = read_gap_list_header(&mut r).unwrap();
        assert_eq!(len, 5);
        let mut got = Vec::new();
        read_gap_list_into(&mut r, len, |x| got.push(x)).unwrap();
        assert_eq!(got, list);
    }

    #[test]
    fn truncated_list_errors() {
        let mut w = BitWriter::new();
        write_gap_list(&mut w, &[10, 20, 30, 40]);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits / 2);
        assert!(read_gap_list(&mut r).is_err());
    }
}
