//! Instantaneous integer codes: unary, Elias γ, Elias δ, Rice, and
//! minimal-binary ("truncated binary") codes.
//!
//! All codes in this module are defined over **non-negative** integers
//! (`u64`). Elias codes classically code `x ≥ 1`; we follow the common
//! convention of coding `x + 1` so that 0 is representable, which is what
//! adjacency-gap coding needs (two equal consecutive ids never occur, but a
//! gap of zero *does* occur for the first element offset and residual deltas).

use crate::{BitError, BitReader, BitWriter, Result};

/// Number of bits used by the unary code for `x` (that is, `x + 1`).
#[inline]
pub fn unary_len(x: u64) -> u64 {
    x + 1
}

/// Writes `x` in unary: `x` zero bits followed by a one bit.
#[inline]
pub fn write_unary(w: &mut BitWriter, x: u64) {
    w.write_zeros(x);
    w.write_bit(true);
}

/// Reads a unary-coded value.
#[inline]
pub fn read_unary(r: &mut BitReader<'_>) -> Result<u64> {
    r.read_unary()
}

/// Number of bits used by the γ code for `x` (codes `x + 1`).
#[inline]
pub fn gamma_len(x: u64) -> u64 {
    let v = x + 1;
    let b = 63 - u64::from(v.leading_zeros());
    2 * b + 1
}

/// Writes `x` with the Elias γ code (codes `x + 1`).
///
/// γ(v) for v ≥ 1 is ⌊log₂ v⌋ zeros, then v's binary representation
/// (which starts with a 1 bit).
#[inline]
pub fn write_gamma(w: &mut BitWriter, x: u64) {
    let v = x.wrapping_add(1);
    assert!(v != 0, "gamma code domain is 0..=u64::MAX-1");
    let b = 63 - v.leading_zeros(); // floor(log2 v)
    w.write_zeros(u64::from(b));
    w.write_bits(v, b + 1);
}

/// Reads an Elias-γ-coded value.
#[inline]
pub fn read_gamma(r: &mut BitReader<'_>) -> Result<u64> {
    let b = r.read_unary()?; // zeros before the leading 1 of v
    if b > 63 {
        return Err(BitError::Corrupt {
            what: "gamma length prefix exceeds 63",
        });
    }
    let rest = r.read_bits(b as u32)?;
    let v = (1u64 << b) | rest;
    Ok(v - 1)
}

/// Number of bits used by the δ code for `x` (codes `x + 1`).
#[inline]
pub fn delta_len(x: u64) -> u64 {
    let v = x + 1;
    let b = 63 - u64::from(v.leading_zeros());
    gamma_len(b) + b
}

/// Writes `x` with the Elias δ code (codes `x + 1`).
///
/// δ(v) codes ⌊log₂ v⌋ + 1 in γ, then the b low-order bits of v.
#[inline]
pub fn write_delta(w: &mut BitWriter, x: u64) {
    let v = x.wrapping_add(1);
    assert!(v != 0, "delta code domain is 0..=u64::MAX-1");
    let b = 63 - u64::from(v.leading_zeros());
    write_gamma(w, b);
    if b > 0 {
        w.write_bits(v & ((1u64 << b) - 1), b as u32);
    }
}

/// Reads an Elias-δ-coded value.
#[inline]
pub fn read_delta(r: &mut BitReader<'_>) -> Result<u64> {
    let b = read_gamma(r)?;
    if b > 63 {
        return Err(BitError::Corrupt {
            what: "delta length prefix exceeds 63",
        });
    }
    let low = if b > 0 { r.read_bits(b as u32)? } else { 0 };
    Ok(((1u64 << b) | low) - 1)
}

/// Number of bits used by the Rice code with parameter `k` for `x`.
#[inline]
pub fn rice_len(x: u64, k: u32) -> u64 {
    (x >> k) + 1 + u64::from(k)
}

/// Writes `x` with a Rice code of parameter `k`: quotient `x >> k` in unary,
/// then the `k` low-order bits verbatim.
#[inline]
pub fn write_rice(w: &mut BitWriter, x: u64, k: u32) {
    assert!(k < 64, "rice parameter must be < 64");
    write_unary(w, x >> k);
    if k > 0 {
        w.write_bits(x & ((1u64 << k) - 1), k);
    }
}

/// Reads a Rice-coded value with parameter `k`.
#[inline]
pub fn read_rice(r: &mut BitReader<'_>, k: u32) -> Result<u64> {
    assert!(k < 64, "rice parameter must be < 64");
    let q = r.read_unary()?;
    let low = if k > 0 { r.read_bits(k)? } else { 0 };
    q.checked_shl(k)
        .and_then(|hi| hi.checked_add(low))
        .ok_or(BitError::Corrupt {
            what: "rice quotient overflows u64",
        })
}

/// Picks the Rice parameter that minimises expected code length for a list
/// with the given mean, following the classic `k = max(0, ⌊log₂(mean)⌋)` rule.
#[inline]
pub fn rice_parameter_for_mean(mean: f64) -> u32 {
    if mean <= 1.0 {
        0
    } else {
        (mean.log2().floor() as u32).min(62)
    }
}

/// Number of bits used by the minimal binary code for `x` in a universe of
/// size `n` (`0 ≤ x < n`).
#[inline]
pub fn minimal_binary_len(x: u64, n: u64) -> u64 {
    assert!(n > 0 && x < n, "minimal binary domain violated");
    if n == 1 {
        return 0;
    }
    let b = 64 - (n - 1).leading_zeros(); // ceil(log2 n)
    let cutoff = cutoff(n, b);
    if x < cutoff {
        u64::from(b) - 1
    } else {
        u64::from(b)
    }
}

/// `2^b − n`, the count of short codewords. For `b == 64` the power of
/// two itself overflows `u64`, but the difference (`2^64 − n`) still
/// fits because `n ≥ 1` — `wrapping_neg` computes exactly that.
#[inline]
fn cutoff(n: u64, b: u32) -> u64 {
    if b == 64 {
        n.wrapping_neg()
    } else {
        (1u64 << b) - n
    }
}

/// Writes `x` (`0 ≤ x < n`) with the minimal binary (truncated binary) code.
///
/// Values below `2^⌈log₂ n⌉ − n` take ⌈log₂ n⌉ − 1 bits, the rest take
/// ⌈log₂ n⌉ bits. For `n` a power of two this is plain fixed-width binary.
/// For `n == 1` the code is empty.
#[inline]
pub fn write_minimal_binary(w: &mut BitWriter, x: u64, n: u64) {
    assert!(n > 0, "universe must be non-empty");
    assert!(x < n, "value {x} outside universe of size {n}");
    if n == 1 {
        return;
    }
    let b = 64 - (n - 1).leading_zeros(); // ceil(log2 n)
    let cutoff = cutoff(n, b);
    if x < cutoff {
        w.write_bits(x, b - 1);
    } else {
        // x + cutoff < n + (2^b − n) = 2^b, so this cannot overflow.
        w.write_bits(x + cutoff, b);
    }
}

/// Reads a minimal-binary-coded value from a universe of size `n`.
#[inline]
pub fn read_minimal_binary(r: &mut BitReader<'_>, n: u64) -> Result<u64> {
    assert!(n > 0, "universe must be non-empty");
    if n == 1 {
        return Ok(0);
    }
    let b = 64 - (n - 1).leading_zeros();
    let cutoff = cutoff(n, b);
    let hi = r.read_bits(b - 1)?;
    if hi < cutoff {
        Ok(hi)
    } else {
        let lo = r.read_bits(1)?;
        let x = (hi << 1) + lo - cutoff;
        if x >= n {
            return Err(BitError::Corrupt {
                what: "minimal binary value out of range",
            });
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_one(
        write: impl Fn(&mut BitWriter, u64),
        read: impl Fn(&mut BitReader<'_>) -> Result<u64>,
        values: &[u64],
    ) {
        let mut w = BitWriter::new();
        for &v in values {
            write(&mut w, v);
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        for &v in values {
            assert_eq!(read(&mut r).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    const SAMPLES: &[u64] = &[
        0,
        1,
        2,
        3,
        4,
        7,
        8,
        15,
        16,
        100,
        127,
        128,
        1000,
        65535,
        65536,
        1 << 32,
        (1 << 40) + 12345,
        u64::MAX - 1,
    ];

    #[test]
    fn unary_round_trip_small() {
        round_trip_one(write_unary, read_unary, &[0, 1, 2, 3, 10, 63, 64, 200]);
    }

    #[test]
    fn gamma_round_trip() {
        round_trip_one(write_gamma, read_gamma, SAMPLES);
    }

    #[test]
    fn delta_round_trip() {
        round_trip_one(write_delta, read_delta, SAMPLES);
    }

    #[test]
    fn rice_round_trip_various_k() {
        for k in [0u32, 1, 3, 5, 8, 13] {
            round_trip_one(
                |w, v| write_rice(w, v, k),
                |r| read_rice(r, k),
                &[0, 1, 2, 5, 100, 1023, 4096, 100_000],
            );
        }
    }

    #[test]
    fn minimal_binary_round_trip_all_universes() {
        for n in 1u64..=40 {
            let values: Vec<u64> = (0..n).collect();
            round_trip_one(
                |w, v| write_minimal_binary(w, v, n),
                |r| read_minimal_binary(r, n),
                &values,
            );
        }
    }

    #[test]
    fn minimal_binary_power_of_two_is_fixed_width() {
        for &n in &[2u64, 4, 8, 256, 1024] {
            let b = n.trailing_zeros() as u64;
            for x in [0, n / 2, n - 1] {
                assert_eq!(minimal_binary_len(x, n), b, "n={n} x={x}");
            }
        }
    }

    #[test]
    fn len_functions_match_actual_encoding() {
        for &v in SAMPLES {
            let mut w = BitWriter::new();
            write_gamma(&mut w, v);
            assert_eq!(w.bit_len(), gamma_len(v), "gamma len mismatch for {v}");

            let mut w = BitWriter::new();
            write_delta(&mut w, v);
            assert_eq!(w.bit_len(), delta_len(v), "delta len mismatch for {v}");
        }
        for (v, k) in [(0u64, 0u32), (5, 2), (100, 4), (1000, 7)] {
            let mut w = BitWriter::new();
            write_rice(&mut w, v, k);
            assert_eq!(w.bit_len(), rice_len(v, k));
        }
        for n in 1u64..32 {
            for x in 0..n {
                let mut w = BitWriter::new();
                write_minimal_binary(&mut w, x, n);
                assert_eq!(w.bit_len(), minimal_binary_len(x, n), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn gamma_known_codewords() {
        // gamma codes value+1: value 0 -> v=1 -> "1"
        let mut w = BitWriter::new();
        write_gamma(&mut w, 0);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 1);
        assert_eq!(bytes[0] >> 7, 1);
        // value 3 -> v=4 -> "00100"
        let mut w = BitWriter::new();
        write_gamma(&mut w, 3);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 5);
        assert_eq!(bytes[0] >> 3, 0b00100);
    }

    #[test]
    fn delta_shorter_than_gamma_for_large_values() {
        let v = (1u64 << 40) + 999;
        assert!(delta_len(v) < gamma_len(v));
    }

    #[test]
    fn truncated_streams_error_cleanly() {
        let mut w = BitWriter::new();
        write_delta(&mut w, 123_456_789);
        let (bytes, bits) = w.finish();
        // Chop off the tail and make sure decoding errors instead of panicking.
        for cut in 1..bits {
            let mut r = BitReader::with_bit_len(&bytes, cut);
            match read_delta(&mut r) {
                Err(_) => {}
                Ok(v) => panic!("decoded {v} from a truncated stream of {cut} bits"),
            }
        }
    }

    #[test]
    fn rice_parameter_heuristic_is_sane() {
        assert_eq!(rice_parameter_for_mean(0.5), 0);
        assert_eq!(rice_parameter_for_mean(1.0), 0);
        assert_eq!(rice_parameter_for_mean(2.0), 1);
        assert_eq!(rice_parameter_for_mean(100.0), 6);
    }
}
