//! Canonical Huffman codes.
//!
//! The paper uses Huffman codes in two places: the supernode graph is encoded
//! by assigning short codes to high-in-degree supernodes (§3.3), and the
//! "Plain Huffman" baseline of §4 does the same for page identifiers. Both
//! need codes over large alphabets, driven by observed frequencies, and
//! rebuildable from disk — which is exactly what *canonical* Huffman codes
//! provide: only the code lengths need to be stored, and decoding works from
//! a per-length `first_code` table without materialising a tree.
//!
//! Code lengths are limited to [`MAX_CODE_LEN`] bits using the classic
//! Kraft-sum repair (as in zlib): overlong codes are clamped and the Kraft
//! deficit is paid for by lengthening the cheapest short codes. This bounds
//! decoder state and keeps pathological (Fibonacci-like) frequency
//! distributions safe.

use crate::{codes, BitError, BitReader, BitWriter, Result};

/// Upper bound on the length of any codeword.
pub const MAX_CODE_LEN: u32 = 48;

/// Symbols are dense indexes into the frequency table the code was built from.
pub type Symbol = u32;

/// An encoder-side canonical Huffman code: a `(codeword, length)` pair per
/// symbol.
///
/// Symbols whose frequency was zero receive no codeword; attempting to encode
/// one panics (it indicates a bug in the caller, not bad data).
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code length in bits per symbol; 0 means "symbol has no code".
    lengths: Vec<u32>,
    /// Canonical codeword per symbol (valid iff `lengths[s] > 0`).
    words: Vec<u64>,
}

impl HuffmanCode {
    /// Builds a canonical code from symbol frequencies.
    ///
    /// Zero-frequency symbols get no code. If only one symbol has non-zero
    /// frequency it receives a 1-bit code so the output remains a valid
    /// prefix code.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let lengths = code_lengths(freqs);
        let words = canonical_codewords(&lengths);
        Self { lengths, words }
    }

    /// Rebuilds the encoder from explicit code lengths (e.g. read from disk).
    pub fn from_lengths(lengths: Vec<u32>) -> Result<Self> {
        validate_lengths(&lengths)?;
        let words = canonical_codewords(&lengths);
        Ok(Self { lengths, words })
    }

    /// Number of symbols in the alphabet (including uncoded ones).
    pub fn num_symbols(&self) -> usize {
        self.lengths.len()
    }

    /// The per-symbol code length table (0 = symbol has no code).
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    /// Code length of `sym` in bits, or 0 if the symbol has no code.
    #[inline]
    pub fn len_of(&self, sym: Symbol) -> u32 {
        self.lengths[sym as usize]
    }

    /// Appends the codeword for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` has no codeword (its build-time frequency was zero).
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: Symbol) {
        let len = self.lengths[sym as usize];
        assert!(len > 0, "symbol {sym} has no Huffman code");
        w.write_bits(self.words[sym as usize], len);
    }

    /// Serialises the code as its length table (γ-coded run of lengths).
    ///
    /// The layout is: γ(num_symbols), then one γ-coded length per symbol.
    /// Lengths compress well because canonical codes have long runs of equal
    /// lengths when symbols are sorted by frequency rank.
    pub fn write_lengths(&self, w: &mut BitWriter) {
        codes::write_gamma(w, self.lengths.len() as u64);
        for &l in &self.lengths {
            codes::write_gamma(w, u64::from(l));
        }
    }

    /// Reads a length table written by [`HuffmanCode::write_lengths`].
    pub fn read_lengths(r: &mut BitReader<'_>) -> Result<Self> {
        let n = codes::read_gamma(r)?;
        if n > u32::MAX as u64 {
            return Err(BitError::BadCodeTable {
                what: "alphabet too large",
            });
        }
        // `n` is untrusted; clamp the reservation so a corrupt count cannot
        // force a giant allocation before the per-symbol reads fail.
        let mut lengths = Vec::with_capacity((n as usize).min(1 << 20));
        for _ in 0..n {
            let l = codes::read_gamma(r)?;
            if l > u64::from(MAX_CODE_LEN) {
                return Err(BitError::BadCodeTable {
                    what: "code length exceeds MAX_CODE_LEN",
                });
            }
            lengths.push(l as u32);
        }
        Self::from_lengths(lengths)
    }

    /// Builds the matching decoder.
    pub fn decoder(&self) -> HuffmanDecoder {
        HuffmanDecoder::from_lengths(&self.lengths)
    }

    /// Total encoded size in bits of a message with the build-time
    /// frequencies (useful for size accounting without encoding).
    pub fn weighted_length(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * u64::from(l))
            .sum()
    }
}

/// Table-driven canonical Huffman decoder.
///
/// Decoding walks the per-length `first_code` table: at most
/// [`MAX_CODE_LEN`] iterations, but a one-shot lookup table over the first
/// `FAST_BITS` (10) bits resolves the overwhelmingly common short codes in
/// a single probe.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// `first_code[l]` = canonical codeword value of the first code of
    /// length `l`, left-aligned comparisons are done on the fly.
    first_code: Vec<u64>,
    /// `first_index[l]` = index into `sorted_symbols` of that first code.
    first_index: Vec<u32>,
    /// Symbols sorted by (length, symbol) — canonical order.
    sorted_symbols: Vec<Symbol>,
    /// Smallest code length present (0 if the code is empty).
    min_len: u32,
    /// Largest code length present.
    max_len: u32,
    /// Fast path: `fast[prefix]` = (symbol, length) for codes of length
    /// ≤ `FAST_BITS`; length 0 marks "take the slow path".
    fast: Vec<(Symbol, u8)>,
}

/// Width of the fast decode table in bits.
const FAST_BITS: u32 = 10;

impl HuffmanDecoder {
    /// Builds a decoder from the per-symbol code lengths.
    pub fn from_lengths(lengths: &[u32]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut count = vec![0u32; (max_len + 1) as usize];
        for &l in lengths {
            count[l as usize] += 1;
        }
        count[0] = 0;
        let min_len = (1..=max_len).find(|&l| count[l as usize] > 0).unwrap_or(0);

        // Canonical first codes per length.
        let mut first_code = vec![0u64; (max_len + 2) as usize];
        let mut first_index = vec![0u32; (max_len + 2) as usize];
        let mut code = 0u64;
        let mut index = 0u32;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l as usize] = code;
            first_index[l as usize] = index;
            code += u64::from(count[l as usize]);
            index += count[l as usize];
        }

        // Symbols in canonical order: by length, then by symbol id.
        let mut sorted: Vec<Symbol> = (0..lengths.len() as u32)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        sorted.sort_by_key(|&s| (lengths[s as usize], s));

        // Fast table over the first FAST_BITS bits.
        let fast_bits = FAST_BITS.min(max_len.max(1));
        let mut fast = vec![(0u32, 0u8); 1usize << fast_bits];
        {
            // Recompute codewords to fill the table.
            let words = canonical_codewords(lengths);
            for (sym, (&len, &word)) in lengths.iter().zip(&words).enumerate() {
                if len == 0 || len > fast_bits {
                    continue;
                }
                let shift = fast_bits - len;
                let base = (word << shift) as usize;
                for fill in 0..(1usize << shift) {
                    fast[base + fill] = (sym as Symbol, len as u8);
                }
            }
        }

        Self {
            first_code,
            first_index,
            sorted_symbols: sorted,
            min_len,
            max_len,
            fast,
        }
    }

    /// Decodes one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<Symbol> {
        if self.max_len == 0 {
            return Err(BitError::BadCodeTable {
                what: "decoding with an empty code",
            });
        }
        // Fast path: peek FAST_BITS when available.
        let fast_bits = FAST_BITS.min(self.max_len.max(1));
        if r.remaining() >= u64::from(fast_bits) {
            let pos = r.position();
            let prefix = r.read_bits(fast_bits)? as usize;
            let (sym, len) = self.fast[prefix];
            if len != 0 {
                r.seek(pos + u64::from(len))?;
                return Ok(sym);
            }
            r.seek(pos)?;
        }
        // Slow path: extend the code one bit at a time.
        let mut code = 0u64;
        let mut len = 0u32;
        while len < self.min_len {
            code = (code << 1) | u64::from(r.read_bit()?);
            len += 1;
        }
        loop {
            let fc = self.first_code[len as usize];
            let cnt_next_index = if len < self.max_len {
                self.first_index[(len + 1) as usize]
            } else {
                self.sorted_symbols.len() as u32
            };
            let fi = self.first_index[len as usize];
            let n_at_len = cnt_next_index - fi;
            if code >= fc && code - fc < u64::from(n_at_len) {
                let idx = fi + (code - fc) as u32;
                return Ok(self.sorted_symbols[idx as usize]);
            }
            if len == self.max_len {
                return Err(BitError::Corrupt {
                    what: "invalid Huffman codeword",
                });
            }
            code = (code << 1) | u64::from(r.read_bit()?);
            len += 1;
        }
    }
}

/// Computes length-limited Huffman code lengths from frequencies.
fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let mut present: Vec<(u64, u32)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(s, &f)| (f, s as u32))
        .collect();
    let mut lengths = vec![0u32; freqs.len()];
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0].1 as usize] = 1;
            return lengths;
        }
        _ => {}
    }
    present.sort_unstable();

    // Two-queue Huffman over the sorted leaves: O(n) merging after the sort.
    // Internal nodes record their two children so lengths can be assigned by
    // a final top-down pass.
    #[derive(Clone, Copy)]
    enum Node {
        Leaf(u32),
        Internal(u32, u32),
    }
    let n = present.len();
    let mut nodes: Vec<Node> = present.iter().map(|&(_, s)| Node::Leaf(s)).collect();
    let mut weights: Vec<u64> = present.iter().map(|&(f, _)| f).collect();
    // leaves queue = indexes 0..n in `nodes`; internals appended after.
    let mut leaf_head = 0usize;
    let mut int_head = n;
    while nodes.len() - int_head + (n - leaf_head) > 1 {
        let mut take = || -> u32 {
            let leaf_ok = leaf_head < n;
            let int_ok = int_head < nodes.len();
            let use_leaf = match (leaf_ok, int_ok) {
                (true, true) => weights[leaf_head] <= weights[int_head],
                (true, false) => true,
                (false, true) => false,
                (false, false) => unreachable!("queues exhausted"),
            };
            if use_leaf {
                leaf_head += 1;
                (leaf_head - 1) as u32
            } else {
                int_head += 1;
                (int_head - 1) as u32
            }
        };
        let a = take();
        let b = take();
        let w = weights[a as usize] + weights[b as usize];
        nodes.push(Node::Internal(a, b));
        weights.push(w);
    }

    // Depth assignment by traversal from the root (the last node created).
    let root = nodes.len() - 1;
    let mut depth = vec![0u32; nodes.len()];
    for i in (0..nodes.len()).rev() {
        match nodes[i] {
            Node::Leaf(sym) => {
                lengths[sym as usize] = depth[i].max(1);
            }
            Node::Internal(a, b) => {
                let d = if i == root { 0 } else { depth[i] };
                depth[a as usize] = d + 1;
                depth[b as usize] = d + 1;
            }
        }
    }

    limit_lengths(&mut lengths, MAX_CODE_LEN);
    lengths
}

/// Clamps code lengths to `limit` bits and repairs the Kraft sum, zlib-style.
fn limit_lengths(lengths: &mut [u32], limit: u32) {
    let over: bool = lengths.iter().any(|&l| l > limit);
    if !over {
        return;
    }
    // Kraft units in terms of 2^-limit.
    let unit = |l: u32| 1u64 << (limit - l);
    for l in lengths.iter_mut() {
        if *l > limit {
            *l = limit;
        }
    }
    let budget = 1u64 << limit;
    let mut used: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit(l)).sum();
    // Lengthen the longest codes that still have room until the sum fits.
    while used > budget {
        // Find a symbol with the largest unit (smallest length) below limit…
        // Actually: lengthening any code with l < limit frees unit(l)/2.
        // Greedily lengthen codes at length limit-1, limit-2, … (cheapest
        // distortion first is to lengthen the *longest* possible codes).
        let mut best: Option<usize> = None;
        for (i, &l) in lengths.iter().enumerate() {
            if l > 0 && l < limit {
                match best {
                    Some(b) if lengths[b] >= l => {}
                    _ => best = Some(i),
                }
            }
        }
        let Some(i) = best else {
            // Unreachable: an alphabet larger than 2^MAX_CODE_LEN would be
            // needed, and callers never build one.
            break;
        };
        used -= unit(lengths[i]) / 2;
        lengths[i] += 1;
    }
}

/// Assigns canonical codewords given lengths (0 = no code).
fn canonical_codewords(lengths: &[u32]) -> Vec<u64> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u64; (max_len + 1) as usize];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = vec![0u64; (max_len + 2) as usize];
    let mut code = 0u64;
    for l in 1..=max_len {
        code <<= 1;
        next[l as usize] = code;
        code += count[l as usize];
    }
    // Within a length, symbols are ordered by id — matching the decoder.
    let mut order: Vec<u32> = (0..lengths.len() as u32)
        .filter(|&s| lengths[s as usize] > 0)
        .collect();
    order.sort_by_key(|&s| (lengths[s as usize], s));
    let mut words = vec![0u64; lengths.len()];
    for s in order {
        let l = lengths[s as usize] as usize;
        words[s as usize] = next[l];
        next[l] += 1;
    }
    words
}

/// Checks that a length table defines a decodable (sub-)prefix code.
fn validate_lengths(lengths: &[u32]) -> Result<()> {
    let mut kraft = 0f64;
    let mut any = false;
    for &l in lengths {
        if l == 0 {
            continue;
        }
        any = true;
        if l > MAX_CODE_LEN {
            return Err(BitError::BadCodeTable {
                what: "length exceeds MAX_CODE_LEN",
            });
        }
        kraft += (0.5f64).powi(l as i32);
    }
    if any && kraft > 1.0 + 1e-9 {
        return Err(BitError::BadCodeTable {
            what: "Kraft inequality violated",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], message: &[Symbol]) {
        let code = HuffmanCode::from_frequencies(freqs);
        let mut w = BitWriter::new();
        for &s in message {
            code.encode(&mut w, s);
        }
        let (bytes, bits) = w.finish();
        let dec = code.decoder();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        for &s in message {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn two_symbols() {
        round_trip(&[5, 3], &[0, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let code = HuffmanCode::from_frequencies(&[0, 7, 0]);
        assert_eq!(code.len_of(1), 1);
        round_trip(&[0, 7, 0], &[1, 1, 1]);
    }

    #[test]
    fn skewed_distribution_gives_short_codes_to_frequent_symbols() {
        let freqs = [1000, 500, 100, 10, 1];
        let code = HuffmanCode::from_frequencies(&freqs);
        for win in (0..5).collect::<Vec<_>>().windows(2) {
            assert!(
                code.len_of(win[0]) <= code.len_of(win[1]),
                "more frequent symbol must not have a longer code"
            );
        }
        round_trip(&freqs, &[0, 4, 2, 1, 3, 0, 0, 2]);
    }

    #[test]
    fn uniform_distribution_is_near_fixed_width() {
        let freqs = vec![10u64; 16];
        let code = HuffmanCode::from_frequencies(&freqs);
        for s in 0..16 {
            assert_eq!(code.len_of(s), 4);
        }
    }

    #[test]
    fn fibonacci_frequencies_are_length_limited() {
        // Fibonacci weights force maximal skew (depth n-1 unlimited).
        let mut freqs = vec![1u64, 1];
        for i in 2..90 {
            let next = freqs[i - 1] + freqs[i - 2];
            freqs.push(next.min(u64::MAX / 2));
        }
        let code = HuffmanCode::from_frequencies(&freqs);
        let max = (0..freqs.len() as u32).map(|s| code.len_of(s)).max();
        assert!(max.unwrap() <= MAX_CODE_LEN);
        // Still a valid prefix code after limiting.
        let msg: Vec<Symbol> = (0..freqs.len() as u32).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn lengths_serialise_and_rebuild() {
        let freqs = [9u64, 0, 4, 4, 2, 1, 0, 30];
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        code.write_lengths(&mut w);
        // Encode a message after the table, as the on-disk format does.
        let msg = [7u32, 0, 2, 3, 7, 5, 4];
        for &s in &msg {
            code.encode(&mut w, s);
        }
        let (bytes, bits) = w.finish();
        let mut r = BitReader::with_bit_len(&bytes, bits);
        let rebuilt = HuffmanCode::read_lengths(&mut r).unwrap();
        let dec = rebuilt.decoder();
        for &s in &msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn decoding_garbage_reports_corruption() {
        let code = HuffmanCode::from_frequencies(&[1, 1, 1]).decoder();
        // lengths: one symbol at len 1, two at len 2 → codeword "11" exists?
        // canonical: sym0 len... whatever; an all-ones stream long enough is
        // either decodable or errors, but must not panic.
        let bytes = [0xFFu8; 2];
        let mut r = BitReader::new(&bytes);
        let mut decoded = 0;
        while r.remaining() > 0 {
            match code.decode(&mut r) {
                Ok(_) => decoded += 1,
                Err(_) => break,
            }
            if decoded > 100 {
                break;
            }
        }
    }

    #[test]
    fn weighted_length_matches_encoded_size() {
        let freqs = [13u64, 7, 7, 3, 1];
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for (s, &f) in freqs.iter().enumerate() {
            for _ in 0..f {
                code.encode(&mut w, s as Symbol);
            }
        }
        assert_eq!(w.bit_len(), code.weighted_length(&freqs));
    }

    #[test]
    fn large_random_alphabet_round_trips() {
        // Zipf-ish frequencies over 2000 symbols.
        let freqs: Vec<u64> = (0..2000u64).map(|i| 1_000_000 / (i + 1)).collect();
        let msg: Vec<Symbol> = (0..2000).map(|i| (i * 7919) % 2000).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn empty_code_rejects_decode() {
        let dec = HuffmanDecoder::from_lengths(&[0, 0, 0]);
        let bytes = [0u8];
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_err());
    }
}
