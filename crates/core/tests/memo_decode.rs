//! The decoded-list memo must be invisible in results: decoding any list
//! through a persistent [`ListMemo`] — whatever its cap, however thrashed —
//! returns exactly what a memo-free decode returns, for arbitrary list
//! collections under every reference mode. The memo is a performance layer;
//! these tests pin that it can never change an answer.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use wg_snode::cache::ListMemo;
use wg_snode::codec::ListCodec;
use wg_snode::refenc::{encode_lists, DecodeMemo, ListsIndex, NoMemo, RefMode, Universe};

/// Strategy: up to 40 sorted deduped lists over a small universe, biased
/// towards overlap so reference encoding actually builds chains.
fn list_collections() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..64, 0..24), 0..40).prop_map(|raw| {
        raw.into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect()
    })
}

fn modes() -> [RefMode; 4] {
    [
        RefMode::None,
        RefMode::Windowed(1),
        RefMode::Windowed(8),
        RefMode::Exact,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every access order, every mode, several caps (including a cap so
    /// small every insertion clears the memo): the memoised decode equals
    /// the NoMemo decode equals the original list.
    #[test]
    fn memoized_decode_equals_nomemo(lists in list_collections(), seed in any::<u64>()) {
        for mode in modes() {
            let enc = encode_lists(&lists, 64, mode, ListCodec::GAMMA);
            let index = ListsIndex::parse(&enc.bytes, enc.bit_len, Universe::Explicit(64), ListCodec::GAMMA).unwrap();
            for cap in [0usize, 96, 1 << 16] {
                let mut memo = ListMemo::with_cap(cap);
                // A pseudo-random access order with repeats, so hot lists
                // and shared prefixes get every chance to hit.
                let n = lists.len() as u64;
                let mut state = seed | 1;
                for step in 0..(2 * lists.len()) {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let i = ((state >> 33) % n.max(1)) as u32;
                    let via_memo = index
                        .decode_list_with_memo(&enc.bytes, enc.bit_len, i, &mut memo)
                        .unwrap();
                    let plain = index
                        .decode_list_with_memo(&enc.bytes, enc.bit_len, i, &mut NoMemo)
                        .unwrap();
                    prop_assert_eq!(&via_memo, &plain, "step {} list {} cap {}", step, i, cap);
                    prop_assert_eq!(&via_memo, &lists[i as usize]);
                    prop_assert!(memo.used() <= cap, "memo overran its cap");
                }
            }
        }
    }

    /// decode_all (which seeds its own full memo) agrees with per-list
    /// random access everywhere.
    #[test]
    fn decode_all_equals_random_access(lists in list_collections()) {
        for mode in modes() {
            let enc = encode_lists(&lists, 64, mode, ListCodec::GAMMA);
            let index = ListsIndex::parse(&enc.bytes, enc.bit_len, Universe::Explicit(64), ListCodec::GAMMA).unwrap();
            let all = index.decode_all(&enc.bytes, enc.bit_len).unwrap();
            prop_assert_eq!(all.len(), lists.len());
            for (i, want) in lists.iter().enumerate() {
                prop_assert_eq!(&all[i], want);
                let got = index.decode_list(&enc.bytes, enc.bit_len, i as u32).unwrap();
                prop_assert_eq!(&got, want);
            }
        }
    }
}

/// The chain decode offers only ancestors to the memo, never the leaf:
/// decoding a plain (chain-free) list must leave a fresh memo untouched,
/// so graphs without reference chains pay nothing for the memo layer.
#[test]
fn plain_decodes_leave_the_memo_empty() {
    let lists: Vec<Vec<u32>> = (0..10u32)
        .map(|i| (0..8).map(|j| (i * 97 + j * 13) % 64).collect())
        .map(|mut l: Vec<u32>| {
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect();
    let enc = encode_lists(&lists, 64, RefMode::None, ListCodec::GAMMA);
    let index = ListsIndex::parse(
        &enc.bytes,
        enc.bit_len,
        Universe::Explicit(64),
        ListCodec::GAMMA,
    )
    .unwrap();
    let mut memo = ListMemo::with_cap(1 << 16);
    for i in 0..lists.len() as u32 {
        let got = index
            .decode_list_with_memo(&enc.bytes, enc.bit_len, i, &mut memo)
            .unwrap();
        assert_eq!(got, lists[i as usize]);
    }
    assert_eq!(memo.used(), 0, "plain lists must not be retained");
    assert!(memo.get(0).is_none());
}

/// Reference chains do populate the memo, and a second pass over the same
/// lists hits the retained ancestors.
#[test]
fn chain_ancestors_are_retained_and_hit() {
    // Near-identical lists force the windowed selector to build chains.
    let base: Vec<u32> = (0..40).collect();
    let lists: Vec<Vec<u32>> = (0..20u32)
        .map(|i| {
            let mut l = base.clone();
            l.retain(|&x| x % 19 != i % 19);
            l
        })
        .collect();
    let enc = encode_lists(&lists, 64, RefMode::Windowed(8), ListCodec::GAMMA);
    let index = ListsIndex::parse(
        &enc.bytes,
        enc.bit_len,
        Universe::Explicit(64),
        ListCodec::GAMMA,
    )
    .unwrap();
    let mut memo = ListMemo::with_cap(1 << 16);
    // Decode back-to-front so every chain is walked from its deep end.
    for i in (0..lists.len() as u32).rev() {
        let got = index
            .decode_list_with_memo(&enc.bytes, enc.bit_len, i, &mut memo)
            .unwrap();
        assert_eq!(got, lists[i as usize]);
    }
    assert!(memo.used() > 0, "chained decodes must retain ancestors");
    assert!(
        (0..lists.len() as u32).any(|i| memo.get(i).is_some()),
        "some ancestor must be memoised"
    );
}
