//! Cross-module integration tests: the S-Node representation must be an
//! *exact* lossless representation of realistic corpus graphs, under every
//! configuration knob.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use wg_corpus::{Corpus, CorpusConfig};
use wg_graph::Graph;
use wg_snode::partition::{PickPolicy, RefineConfig};
use wg_snode::refenc::RefMode;
use wg_snode::subgraphs::SuperedgePolicy;
use wg_snode::{build_snode, RepoInput, SNode, SNodeConfig, SNodeInMemory};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wg_snode_it_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn check_exact(name: &str, urls: &[&str], domains: &[u32], graph: &Graph, config: &SNodeConfig) {
    let dir = temp_dir(name);
    let input = RepoInput {
        urls,
        domains,
        graph,
    };
    let (stats, renum) = build_snode(input, config, &dir).unwrap();
    assert_eq!(stats.num_edges, graph.num_edges());

    let disk = SNode::open(&dir, 4 << 20).unwrap();
    let mem = SNodeInMemory::load(&dir).unwrap();
    for old in 0..graph.num_nodes() {
        let new = renum.new_of_old[old as usize];
        let mut expect: Vec<u32> = graph
            .neighbors(old)
            .iter()
            .map(|&t| renum.new_of_old[t as usize])
            .collect();
        expect.sort_unstable();
        assert_eq!(disk.out_neighbors(new).unwrap(), expect, "disk, old {old}");
        assert_eq!(mem.out_neighbors(new).unwrap(), expect, "mem, old {old}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_graph_round_trips_exactly() {
    let corpus = Corpus::generate(CorpusConfig::scaled(1_500, 2024));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    check_exact(
        "corpus",
        &urls,
        &domains,
        &corpus.graph,
        &SNodeConfig::default(),
    );
}

#[test]
fn corpus_graph_round_trips_with_edge_count_policy_and_tight_files() {
    let corpus = Corpus::generate(CorpusConfig::scaled(800, 7));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let config = SNodeConfig {
        superedge_policy: SuperedgePolicy::EdgeCount,
        max_file_bytes: 512, // many tiny index files
        ref_mode: RefMode::Windowed(4),
        ..Default::default()
    };
    check_exact("edgecount", &urls, &domains, &corpus.graph, &config);
}

#[test]
fn corpus_graph_round_trips_without_reference_encoding() {
    let corpus = Corpus::generate(CorpusConfig::scaled(600, 99));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let config = SNodeConfig {
        ref_mode: RefMode::None,
        ..Default::default()
    };
    check_exact("noref", &urls, &domains, &corpus.graph, &config);
}

#[test]
fn random_pick_policy_round_trips_exactly() {
    // The paper's final element-choice policy (uniform random, with the
    // consecutive-abort stopping criterion) must also produce an exact
    // representation — only the partition differs, never the graph.
    let corpus = Corpus::generate(CorpusConfig::scaled(900, 64));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let config = SNodeConfig {
        refine: RefineConfig {
            pick: PickPolicy::Random,
            ..Default::default()
        },
        ..Default::default()
    };
    check_exact("randompick", &urls, &domains, &corpus.graph, &config);
}

#[test]
fn transpose_graph_round_trips_exactly() {
    // The paper builds S-Node representations of WGᵀ too (backlinks).
    let corpus = Corpus::generate(CorpusConfig::scaled(1_000, 5));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let transpose = corpus.graph.transpose();
    check_exact(
        "transpose",
        &urls,
        &domains,
        &transpose,
        &SNodeConfig::default(),
    );
}

#[test]
fn reference_encoding_compresses_corpus_graphs() {
    // Sanity on the headline claim's direction: with reference encoding the
    // representation is smaller than without it.
    let corpus = Corpus::generate(CorpusConfig::scaled(2_000, 31));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };

    let dir_ref = temp_dir("cmp_ref");
    let (stats_ref, _) = build_snode(input, &SNodeConfig::default(), &dir_ref).unwrap();
    let dir_plain = temp_dir("cmp_plain");
    let config_plain = SNodeConfig {
        ref_mode: RefMode::None,
        ..Default::default()
    };
    let (stats_plain, _) = build_snode(input, &config_plain, &dir_plain).unwrap();

    assert!(
        stats_ref.bits_per_edge() < stats_plain.bits_per_edge(),
        "reference encoding must shrink the representation: {} vs {}",
        stats_ref.bits_per_edge(),
        stats_plain.bits_per_edge()
    );
    std::fs::remove_dir_all(&dir_ref).ok();
    std::fs::remove_dir_all(&dir_plain).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary small repositories (random URLs across hosts/dirs, random
    /// graphs) must round-trip exactly under arbitrary split behaviour.
    #[test]
    fn arbitrary_small_repositories_round_trip(
        n in 2u32..60,
        edges in prop::collection::vec((0u32..60, 0u32..60), 0..400),
        seed in any::<u64>(),
    ) {
        let urls: Vec<String> = (0..n)
            .map(|i| {
                format!(
                    "http://h{}.dom{}.org/d{}/p{:03}.html",
                    i % 4,
                    i % 3,
                    i % 5,
                    i
                )
            })
            .collect();
        let domains: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .collect();
        let graph = Graph::from_edges(n, edges);
        let config = SNodeConfig {
            refine: RefineConfig { seed, ..Default::default() },
            max_file_bytes: 256,
            ..Default::default()
        };
        let dir = temp_dir(&format!("prop_{seed}_{n}"));
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let input = RepoInput { urls: &url_refs, domains: &domains, graph: &graph };
        let (_stats, renum) = build_snode(input, &config, &dir).unwrap();
        let snode = SNode::open(&dir, 64 << 10).unwrap();
        for old in 0..n {
            let new = renum.new_of_old[old as usize];
            let mut expect: Vec<u32> = graph
                .neighbors(old)
                .iter()
                .map(|&t| renum.new_of_old[t as usize])
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(snode.out_neighbors(new).unwrap(), expect);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
