//! Build-level bit-flip robustness: navigation over a built directory
//! whose bytes were corrupted must never panic. The integrity manifest is
//! removed first so the decode paths see the damage raw, instead of the
//! checksum layer rejecting the blob before a single bit is decoded —
//! this is what exercises the checked conversions (`Corrupt` instead of
//! truncating casts or out-of-bounds indexing) on the navigation paths.
//!
//! Outcomes other than a panic are all acceptable: `open`/`load` may
//! error, any query may error, and generous flips may even decode to a
//! different (still well-formed) graph.

// Test/bench code: unwrap on setup failure is the desired behaviour.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::sync::OnceLock;
use wg_corpus::{Corpus, CorpusConfig};
use wg_snode::{build_snode, CodecConfig, RepoInput, SNode, SNodeConfig, SNodeInMemory};

/// One γ directory and one with every codec feature on, so both the seed
/// list streams and the ζ/interval/copy-block/single-target decode paths
/// face flipped bits.
const CELLS: [&str; 2] = ["g", "z3+iv+cb+st"];

fn built_dir(cell: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "wg_bitflip_{}_{}",
        cell.replace('+', "_"),
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = Corpus::generate(CorpusConfig::scaled(300, 11));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    let config = SNodeConfig {
        codec: CodecConfig::parse(cell).unwrap(),
        ..SNodeConfig::default()
    };
    build_snode(input, &config, &dir).unwrap();
    std::fs::remove_file(dir.join("sums.bin")).unwrap();
    dir
}

fn dirs() -> &'static [std::path::PathBuf; 2] {
    static DIRS: OnceLock<[std::path::PathBuf; 2]> = OnceLock::new();
    DIRS.get_or_init(|| [built_dir(CELLS[0]), built_dir(CELLS[1])])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_bit_flips_never_panic_navigation(
        cell in 0usize..2,
        in_meta in any::<bool>(),
        pos in any::<u64>(),
    ) {
        let dir = &dirs()[cell];
        let name = if in_meta { "meta.bin" } else { "index_000.bin" };
        let path = dir.join(name);
        let orig = std::fs::read(&path).unwrap();
        let bit = (pos % (orig.len() as u64 * 8)) as usize;
        let mut bytes = orig.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(snode) = SNode::open(dir, 1 << 20) {
            for p in 0..snode.num_pages().min(400) {
                let _ = snode.out_neighbors(p);
            }
        }
        if let Ok(mem) = SNodeInMemory::load(dir) {
            for p in 0..mem.num_pages().min(400) {
                let _ = mem.out_neighbors(p);
            }
        }
        std::fs::write(&path, &orig).unwrap();
    }
}
