//! Failure injection: a corrupted or truncated on-disk S-Node
//! representation must surface errors, never panic and never silently
//! return wrong adjacency data at the points corruption is detectable.

use wg_corpus::{Corpus, CorpusConfig};
use wg_snode::{build_snode, RepoInput, SNode, SNodeConfig, SNodeInMemory};

fn build_repo(name: &str) -> (std::path::PathBuf, u32) {
    let corpus = Corpus::generate(CorpusConfig::scaled(600, 77));
    let urls: Vec<&str> = corpus.pages.iter().map(|p| p.url.as_str()).collect();
    let domains: Vec<u32> = corpus.pages.iter().map(|p| p.domain).collect();
    let mut dir = std::env::temp_dir();
    dir.push(format!("wg_failinj_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let input = RepoInput {
        urls: &urls,
        domains: &domains,
        graph: &corpus.graph,
    };
    build_snode(input, &SNodeConfig::default(), &dir).expect("build");
    (dir, corpus.num_pages())
}

#[test]
fn truncated_meta_fails_to_open() {
    let (dir, _) = build_repo("meta_trunc");
    let meta = dir.join("meta.bin");
    let bytes = std::fs::read(&meta).unwrap();
    for cut in [0, 1, 7, bytes.len() / 3, bytes.len() - 1] {
        std::fs::write(&meta, &bytes[..cut]).unwrap();
        assert!(
            SNode::open(&dir, 1 << 20).is_err(),
            "open must fail with meta truncated to {cut} bytes"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_meta_never_panics() {
    let (dir, num_pages) = build_repo("meta_flip");
    let meta = dir.join("meta.bin");
    let original = std::fs::read(&meta).unwrap();
    // Flip a byte at a spread of positions; open must either fail or
    // produce a representation that errors (not panics) on navigation.
    for pos in (0..original.len()).step_by(original.len() / 23 + 1) {
        let mut bytes = original.clone();
        bytes[pos] ^= 0xA5;
        std::fs::write(&meta, &bytes).unwrap();
        match SNode::open(&dir, 1 << 20) {
            Err(_) => {}
            Ok(snode) => {
                for p in (0..num_pages.min(snode.num_pages())).step_by(97) {
                    let _ = snode.out_neighbors(p); // must not panic
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_index_files_fail_to_open() {
    let (dir, _) = build_repo("missing_idx");
    std::fs::remove_file(dir.join("index_000.bin")).unwrap();
    assert!(SNode::open(&dir, 1 << 20).is_err());
    assert!(SNodeInMemory::load(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_index_file_errors_on_access() {
    let (dir, num_pages) = build_repo("idx_trunc");
    let idx = dir.join("index_000.bin");
    let bytes = std::fs::read(&idx).unwrap();
    std::fs::write(&idx, &bytes[..bytes.len() / 2]).unwrap();
    // Open may succeed (meta is intact); navigation into the truncated
    // region must error, not panic.
    match SNode::open(&dir, 1 << 20) {
        Err(_) => {}
        Ok(snode) => {
            let mut saw_error = false;
            for p in 0..num_pages {
                if snode.out_neighbors(p).is_err() {
                    saw_error = true;
                }
            }
            assert!(
                saw_error,
                "half the index file is gone; something must fail"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_index_payload_is_detected_or_decodes_to_something() {
    // Bit flips inside graph payloads may or may not be detectable (a
    // flipped gap still decodes); the guarantee is no panic and no
    // out-of-range page ids.
    let (dir, num_pages) = build_repo("idx_flip");
    let idx = dir.join("index_000.bin");
    let original = std::fs::read(&idx).unwrap();
    for pos in (0..original.len()).step_by(original.len() / 17 + 1) {
        let mut bytes = original.clone();
        bytes[pos] ^= 0xFF;
        std::fs::write(&idx, &bytes).unwrap();
        let Ok(snode) = SNode::open(&dir, 1 << 20) else {
            continue;
        };
        for p in (0..num_pages).step_by(41) {
            if let Ok(list) = snode.out_neighbors(p) {
                assert!(
                    list.iter().all(|&t| t < num_pages),
                    "decoded target out of page range after corruption"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pagemap_corruption_is_rejected() {
    let (dir, _) = build_repo("pagemap");
    let pm = dir.join("pagemap.bin");
    let mut bytes = std::fs::read(&pm).unwrap();
    // Out-of-range entry.
    let n = bytes.len();
    bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&pm, &bytes).unwrap();
    assert!(wg_snode::Renumbering::read(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
