//! Memory-budgeted cache of decoded intranode / superedge graphs.
//!
//! The §4.3 experiments give each representation a fixed memory allowance;
//! for S-Node, whatever is left after the resident supernode graph and
//! indexes "was used to load and decode intranode and superedge graphs as
//! required by the queries". This cache is that space: decoded graphs enter
//! on first use, are evicted least-recently-used when the byte budget
//! overflows, and every load/unload is recorded — the paper instrumented
//! exactly these events to explain its Figure 11 numbers.

use crate::refenc::{DecodeMemo, ListsIndex};
use crate::subgraphs::SuperedgeIndex;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use wg_obs::{
    stage_add, stage_sample, telemetry_enabled, LockMetrics, Stage, Stopwatch, SAMPLE_SCALE,
};

/// Shared wait/hold accounting for every decoded-list memo mutex: the
/// memos are per-graph and churn with the cache, so one process-wide
/// group (registered as `core.nav.memo_lock` under `--metrics`) keeps
/// their contention observable without per-graph registry traffic.
fn memo_lock_metrics() -> &'static LockMetrics {
    static MEMO_LOCK: OnceLock<LockMetrics> = OnceLock::new();
    MEMO_LOCK.get_or_init(|| LockMetrics::auto("core.nav.memo_lock"))
}

/// Point-in-time contention profile of the shared memo-mutex group.
pub fn memo_lock_stats() -> wg_obs::LockStats {
    memo_lock_metrics().stats()
}

/// Telemetry-aware memo acquisition: free when telemetry is off (one
/// relaxed load); when on, counts the acquisition, detects contention via
/// `try_lock`, and attributes blocked time to [`Stage::ShardLock`].
fn lock_memo(memo: &Mutex<ListMemo>) -> MutexGuard<'_, ListMemo> {
    if !telemetry_enabled() {
        return memo.lock();
    }
    let lm = memo_lock_metrics();
    lm.acquisitions.inc();
    if let Some(g) = memo.try_lock() {
        return g;
    }
    lm.contended.inc();
    let sw = Stopwatch::start();
    let g = memo.lock();
    let ns = sw.elapsed_ns();
    lm.wait_ns.add(ns);
    stage_add(Stage::ShardLock, ns);
    g
}

/// Bounded memo of decoded lists, attached to an encoded cached graph.
///
/// The memo is the fast-navigation layer of §4.3's byte budget story: the
/// shared reference-chain prefixes of an encoded graph — the lists other
/// lists decode *through*, which is exactly the hot minority — are kept in
/// decoded form so a chain walk that reaches one is an O(1) lookup instead
/// of a further O(chain) decode. Only those ancestors are ever offered
/// (see [`ListsIndex::decode_list_with_memo`]); leaf lists nothing
/// references are decoded straight into the caller's buffer, keeping the
/// per-decode overhead of the memo near zero. Its capacity is **reserved
/// statically**: the parent graph's accounted [`CachedGraph::bytes`]
/// includes the full memo cap at construction, so the memo's worst case is
/// charged against the cache budget up front and freed wholesale when the
/// parent graph is evicted — no dynamic re-accounting, no leak.
///
/// Overflow policy: an insertion that would exceed the cap clears the
/// whole memo first (a full restart, not per-entry eviction). This keeps
/// run-to-run behaviour deterministic — it never depends on `HashMap`
/// iteration order — which the bench drift check requires.
#[derive(Debug, Default)]
pub struct ListMemo {
    map: HashMap<u32, Vec<u32>>,
    used: usize,
    cap: usize,
    hits: Option<wg_obs::Counter>,
}

impl ListMemo {
    /// Approximate retained cost of one entry.
    fn entry_bytes(v: &[u32]) -> usize {
        v.len() * 4 + std::mem::size_of::<Vec<u32>>() + 4
    }

    /// A memo bounded by `cap` bytes of decoded lists. Registers the
    /// `core.nav.list_memo_hits` counter when metrics are enabled.
    pub fn with_cap(cap: usize) -> Self {
        let hits =
            wg_obs::metrics_enabled().then(|| wg_obs::global().counter("core.nav.list_memo_hits"));
        Self {
            map: HashMap::new(),
            used: 0,
            cap,
            hits,
        }
    }

    /// Bytes of decoded lists currently retained.
    pub fn used(&self) -> usize {
        self.used
    }

    /// The static byte reservation this memo was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl DecodeMemo for ListMemo {
    fn get(&self, i: u32) -> Option<&Vec<u32>> {
        // Graphs with no reference chains never populate the memo; one
        // branch here keeps their decode path free of hashing entirely.
        if self.map.is_empty() {
            return None;
        }
        let v = self.map.get(&i);
        if v.is_some() {
            if let Some(h) = &self.hits {
                h.inc();
            }
        }
        v
    }

    fn put(&mut self, i: u32, v: &[u32]) {
        let cost = Self::entry_bytes(v);
        if cost > self.cap {
            return; // one oversized list can never fit
        }
        if self.used + cost > self.cap {
            self.map.clear();
            self.used = 0;
        }
        if let Some(old) = self.map.insert(i, v.to_vec()) {
            self.used -= Self::entry_bytes(&old);
        }
        self.used += cost;
    }
}

/// Identity of a cached graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKey {
    /// The intranode graph of supernode `s`.
    Intra(u32),
    /// The superedge graph of superedge `from → to`.
    Super(u32, u32),
}

/// A decoded graph: positive adjacency lists in local ids.
///
/// Intranode graphs are dense (one list per page of the supernode);
/// superedge graphs are kept **sparse** — only the sources with cross-links
/// are materialised, since on a Web-scale partition the overwhelming
/// majority of a supernode's pages have no links into any one neighbour.
#[derive(Debug)]
pub enum CachedGraph {
    /// One list per local id.
    Dense {
        /// `lists[local]` = sorted local targets.
        lists: Vec<Vec<u32>>,
        /// Approximate decoded footprint (drives eviction).
        bytes: usize,
    },
    /// Lists only for the sources that have any.
    Sparse {
        /// Sorted local source ids with non-empty lists.
        sources: Vec<u32>,
        /// Parallel target lists.
        lists: Vec<Vec<u32>>,
        /// Approximate decoded footprint (drives eviction).
        bytes: usize,
    },
    /// An intranode graph kept *encoded*, with its parsed directory;
    /// individual lists decode on demand. This is the query-time resident
    /// form: it keeps a supernode's working set close to its on-disk size
    /// instead of its decoded size, which is what lets the §4.3 memory
    /// caps hold "all the intranode and superedge graphs relevant to a
    /// query" at once.
    EncodedIntra {
        /// The encoded graph (owned copy or zero-copy resident borrow).
        data: crate::disk::Blob,
        /// Exact bit length.
        bit_len: u64,
        /// Parsed directory (offsets rebuilt at load).
        index: ListsIndex,
        /// Decoded-list memo (shared reference-chain prefixes), keyed by
        /// local page id. Its cap is part of `bytes`.
        memo: Mutex<ListMemo>,
        /// Resident footprint (encoded bytes + directory + memo cap).
        bytes: usize,
    },
    /// A superedge graph kept encoded, with its parsed directory.
    EncodedSuper {
        /// The encoded graph (owned copy or zero-copy resident borrow).
        data: crate::disk::Blob,
        /// Exact bit length.
        bit_len: u64,
        /// Parsed directory.
        index: SuperedgeIndex,
        /// `|Nj|`, needed to complement negative representations.
        nj: u64,
        /// Decoded-list memo (shared reference-chain prefixes), keyed in
        /// lists-index space — see
        /// [`SuperedgeIndex::targets_of_with_memo`]. Its cap is part of
        /// `bytes`.
        memo: Mutex<ListMemo>,
        /// Resident footprint.
        bytes: usize,
    },
}

impl CachedGraph {
    /// Wraps dense decoded lists, computing the footprint.
    pub fn new(lists: Vec<Vec<u32>>) -> Self {
        let bytes: usize = lists
            .iter()
            .map(|l| l.len() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum::<usize>()
            + std::mem::size_of::<Self>();
        CachedGraph::Dense { lists, bytes }
    }

    /// Wraps sparse decoded lists, computing the footprint.
    pub fn new_sparse(sources: Vec<u32>, lists: Vec<Vec<u32>>) -> Self {
        debug_assert_eq!(sources.len(), lists.len());
        let bytes: usize = lists
            .iter()
            .map(|l| l.len() * 4 + std::mem::size_of::<Vec<u32>>() + 4)
            .sum::<usize>()
            + std::mem::size_of::<Self>();
        CachedGraph::Sparse {
            sources,
            lists,
            bytes,
        }
    }

    /// The decoded-list memo cap for an encoded graph: equal to the
    /// graph's own encoded footprint. Policy: a graph's hot decoded lists
    /// may occupy at most as much budget again as the encoded graph they
    /// derive from, so admitting a graph charges exactly twice its
    /// encoded-resident size and the §4.3 accounting stays a single
    /// constructor-time number.
    fn memo_cap(encoded: usize) -> usize {
        encoded
    }

    /// Wraps an encoded intranode graph with its parsed directory. The
    /// bytes may be an owned copy or a resident borrow; either way the
    /// cache charges their full length — a resident borrow pins its
    /// share of the region, so the budget accounting stays honest.
    pub fn new_encoded_intra(
        data: impl Into<crate::disk::Blob>,
        bit_len: u64,
        index: ListsIndex,
    ) -> Self {
        let data = data.into();
        let encoded = data.len() + index.heap_bytes();
        let cap = Self::memo_cap(encoded);
        let bytes = encoded + cap + std::mem::size_of::<Self>();
        CachedGraph::EncodedIntra {
            data,
            bit_len,
            index,
            memo: Mutex::new(ListMemo::with_cap(cap)),
            bytes,
        }
    }

    /// Wraps an encoded superedge graph with its parsed directory (same
    /// owned-or-resident contract as [`CachedGraph::new_encoded_intra`]).
    pub fn new_encoded_super(
        data: impl Into<crate::disk::Blob>,
        bit_len: u64,
        index: SuperedgeIndex,
        nj: u64,
    ) -> Self {
        let data = data.into();
        let encoded = data.len() + index.heap_bytes();
        let cap = Self::memo_cap(encoded);
        let bytes = encoded + cap + std::mem::size_of::<Self>();
        CachedGraph::EncodedSuper {
            data,
            bit_len,
            index,
            nj,
            memo: Mutex::new(ListMemo::with_cap(cap)),
            bytes,
        }
    }

    /// The positive target list of local id `local` (empty when absent).
    pub fn decode_list_for(&self, local: u32) -> crate::Result<Vec<u32>> {
        let mut out = Vec::new();
        self.decode_list_into(local, &mut out)?;
        Ok(out)
    }

    /// Decodes the target list of `local` into `out` (cleared first).
    ///
    /// This is the fast navigation path: encoded graphs consult (and feed)
    /// their decoded-list memo, and the caller's buffer is reused across
    /// calls, so a BFS level costs no per-page list allocation on hits.
    pub fn decode_list_into(&self, local: u32, out: &mut Vec<u32>) -> crate::Result<()> {
        out.clear();
        match self {
            CachedGraph::Dense { lists, .. } => {
                if let Some(l) = lists.get(local as usize) {
                    out.extend_from_slice(l);
                }
                Ok(())
            }
            CachedGraph::Sparse { sources, lists, .. } => {
                if let Ok(i) = sources.binary_search(&local) {
                    out.extend_from_slice(&lists[i]);
                }
                Ok(())
            }
            CachedGraph::EncodedIntra {
                data,
                bit_len,
                index,
                memo,
                ..
            } => {
                let mut memo = lock_memo(memo);
                if let Some(v) = memo.get(local) {
                    // Memo hit: a copy, no decode — not worth a clock pair
                    // to attribute (the overhead would dwarf the work).
                    out.extend_from_slice(v);
                } else {
                    // Sampled: per-list decode is the hottest query path.
                    let sw = stage_sample();
                    let list = index.decode_list_with_memo(data, *bit_len, local, &mut *memo)?;
                    out.extend_from_slice(&list);
                    if let Some(sw) = sw {
                        stage_add(
                            Stage::ListDecode,
                            sw.elapsed_ns().saturating_mul(SAMPLE_SCALE),
                        );
                    }
                }
                Ok(())
            }
            CachedGraph::EncodedSuper {
                data,
                bit_len,
                index,
                nj,
                memo,
                ..
            } => {
                let mut memo = lock_memo(memo);
                let sw = stage_sample();
                let list = index.targets_of_with_memo(
                    data,
                    *bit_len,
                    u64::from(local),
                    *nj,
                    &mut *memo,
                )?;
                out.extend_from_slice(&list);
                if let Some(sw) = sw {
                    stage_add(
                        Stage::ListDecode,
                        sw.elapsed_ns().saturating_mul(SAMPLE_SCALE),
                    );
                }
                Ok(())
            }
        }
    }

    /// Bytes of decoded lists currently retained by this graph's memo
    /// (0 for decoded variants, which have no memo).
    pub fn memo_used(&self) -> usize {
        match self {
            CachedGraph::EncodedIntra { memo, .. } | CachedGraph::EncodedSuper { memo, .. } => {
                memo.lock().used()
            }
            _ => 0,
        }
    }

    /// The memo's static byte reservation (0 for decoded variants).
    pub fn memo_cap_bytes(&self) -> usize {
        match self {
            CachedGraph::EncodedIntra { memo, .. } | CachedGraph::EncodedSuper { memo, .. } => {
                memo.lock().cap()
            }
            _ => 0,
        }
    }

    /// Approximate resident footprint in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            CachedGraph::Dense { bytes, .. }
            | CachedGraph::Sparse { bytes, .. }
            | CachedGraph::EncodedIntra { bytes, .. }
            | CachedGraph::EncodedSuper { bytes, .. } => *bytes,
        }
    }
}

/// One cache instrumentation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A graph was decoded into the cache.
    Load(GraphKey),
    /// A graph was evicted to make room.
    Unload(GraphKey),
}

/// Aggregate cache statistics: a point-in-time view over the cache's
/// [`wg_obs::CacheMetrics`] counters (the counters are the source of
/// truth; under `--metrics` they are shared with the global registry as
/// `core.cache.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphCacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups requiring a load.
    pub misses: u64,
    /// Graphs evicted.
    pub evictions: u64,
    /// Total bytes decoded over the lifetime (load traffic).
    pub bytes_loaded: u64,
}

/// Default shard count for shared-read caches. Power of two, sized for
/// the thread-per-core wg-serve front-end: enough shards that concurrent
/// readers rarely collide on one lock, few enough that the per-shard
/// byte budget (`total / shards`) stays useful at the §4.3 allowances.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Sharded LRU cache of decoded graphs under a byte budget.
///
/// The cache is the interior-mutability layer of the shared read path
/// (DESIGN.md §5f): the decoded representation itself is immutable after
/// open, and all query-time mutation — admissions, evictions, recency —
/// lives behind per-shard mutexes here, so every navigation API can take
/// `&self` and the whole [`crate::SNode`] becomes `Sync`.
///
/// Shard selection is FNV-1a over the [`GraphKey`] fields — deliberately
/// *not* `std`'s per-process-seeded hasher, so the shard a key lands in
/// (and therefore the hit/miss/eviction counters the bench gate compares)
/// is identical across processes and runs. Each shard owns an equal slice
/// of the byte budget and runs the same unique-tick LRU the unsharded
/// cache used; the tick is a single process-wide atomic, so recency
/// ordering stays total and single-threaded runs remain deterministic.
#[derive(Debug)]
pub struct GraphCache {
    budget: usize,
    shards: Vec<Mutex<Shard>>,
    /// Parallel to `shards`: per-shard traffic and lock-contention
    /// counters feeding the serve heatmap (hit/miss always on; lock
    /// timing telemetry-gated).
    shard_tel: Vec<ShardTel>,
    tick: std::sync::atomic::AtomicU64,
    metrics: wg_obs::CacheMetrics,
    /// When `Some`, every load/unload is appended here (the paper's log).
    log: Mutex<Option<Vec<CacheEvent>>>,
}

/// Per-shard instrumentation: hit/miss split plus the shard mutex's
/// contention profile. Registered as `core.cache.shard{i}.*` under
/// `--metrics`.
#[derive(Debug)]
struct ShardTel {
    hits: wg_obs::Counter,
    misses: wg_obs::Counter,
    lock: LockMetrics,
}

impl ShardTel {
    fn auto(i: usize) -> Self {
        if wg_obs::metrics_enabled() {
            let reg = wg_obs::global();
            ShardTel {
                hits: reg.counter(&format!("core.cache.shard{i}.hits")),
                misses: reg.counter(&format!("core.cache.shard{i}.misses")),
                lock: LockMetrics::registered(reg, &format!("core.cache.shard{i}.lock")),
            }
        } else {
            ShardTel {
                hits: wg_obs::Counter::new(),
                misses: wg_obs::Counter::new(),
                lock: LockMetrics::unregistered(),
            }
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<GraphKey, Entry>,
    used: usize,
    budget: usize,
}

#[derive(Debug)]
struct Entry {
    graph: Arc<CachedGraph>,
    last_used: u64,
}

/// Small-integer → static string for allocation-free trace args (shard
/// ids; counts beyond the table collapse to one label).
fn itoa(i: usize) -> &'static str {
    const NAMES: [&str; 16] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
    ];
    NAMES.get(i).copied().unwrap_or("16+")
}

/// FNV-1a over the key's discriminant and fields: the deterministic shard
/// hash (see the [`GraphCache`] docs for why `std`'s seeded hasher would
/// break the bench determinism gate).
fn shard_hash(key: &GraphKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    fn eat(mut h: u64, v: u32) -> u64 {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }
    match *key {
        GraphKey::Intra(s) => eat(eat(OFFSET, 1), s),
        GraphKey::Super(i, j) => eat(eat(eat(OFFSET, 2), i), j),
    }
}

impl GraphCache {
    /// Creates a cache bounded by `budget_bytes` of decoded graph data,
    /// split over [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new(budget_bytes: usize) -> Self {
        Self::with_shards(budget_bytes, DEFAULT_CACHE_SHARDS)
    }

    /// Creates a cache with an explicit shard count (1 = the classic
    /// global-LRU behaviour; tests that reason about eviction order use
    /// this).
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let budget = budget_bytes.max(1);
        let per_shard = (budget / n).max(1);
        Self {
            budget,
            shards: (0..n)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        used: 0,
                        budget: per_shard,
                    })
                })
                .collect(),
            shard_tel: (0..n).map(ShardTel::auto).collect(),
            tick: std::sync::atomic::AtomicU64::new(0),
            metrics: wg_obs::CacheMetrics::auto("core.cache"),
            log: Mutex::new(None),
        }
    }

    fn shard_index(&self, key: &GraphKey) -> usize {
        (shard_hash(key) % self.shards.len() as u64) as usize
    }

    /// Acquires shard `i`'s mutex. Telemetry off: a plain `lock()` after
    /// one relaxed load. Telemetry on: counts the acquisition, detects
    /// contention via `try_lock`, records blocked time on the shard's
    /// [`LockMetrics`], and attributes it to [`Stage::ShardLock`].
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, Shard> {
        if !telemetry_enabled() {
            return self.shards[i].lock();
        }
        let lm = &self.shard_tel[i].lock;
        lm.acquisitions.inc();
        if let Some(g) = self.shards[i].try_lock() {
            return g;
        }
        lm.contended.inc();
        let sw = Stopwatch::start();
        let g = self.shards[i].lock();
        let ns = sw.elapsed_ns();
        lm.wait_ns.add(ns);
        stage_add(Stage::ShardLock, ns);
        g
    }

    fn next_tick(&self) -> u64 {
        // Relaxed is enough: ticks only order evictions, and any total
        // order over concurrent insertions is acceptable — determinism is
        // only promised for single-threaded runs.
        self.tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// Enables event logging (disabled by default; the log grows unbounded
    /// while enabled).
    pub fn enable_log(&self) {
        let mut log = self.log.lock();
        if log.is_none() {
            *log = Some(Vec::new());
        }
    }

    /// Takes the accumulated event log, leaving logging enabled.
    pub fn take_log(&self) -> Vec<CacheEvent> {
        match &mut *self.log.lock() {
            Some(l) => std::mem::take(l),
            None => Vec::new(),
        }
    }

    /// Total byte budget (split evenly across shards).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Bytes currently cached, summed over shards.
    pub fn used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// Number of graphs currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Statistics so far (a view over the obs counters).
    pub fn stats(&self) -> GraphCacheStats {
        GraphCacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            evictions: self.metrics.evictions.get(),
            bytes_loaded: self.metrics.bytes_loaded.get(),
        }
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&self) {
        self.metrics.reset();
    }

    /// Looks up a graph, bumping its recency.
    pub fn get(&self, key: GraphKey) -> Option<Arc<CachedGraph>> {
        let tick = self.next_tick();
        let i = self.shard_index(&key);
        let mut shard = self.lock_shard(i);
        // Sampled: this runs per list access, far too hot for an
        // unconditional clock pair. One stopwatch serves both hold-time
        // and stage attribution (the guard drops right after, so lookup
        // time ≈ hold time), and the sampled value is scaled to estimate
        // the full population.
        let sw = stage_sample();
        let got = match shard.map.get_mut(&key) {
            Some(e) => {
                e.last_used = tick;
                self.metrics.hits.inc();
                self.shard_tel[i].hits.inc();
                Some(Arc::clone(&e.graph))
            }
            None => {
                self.metrics.misses.inc();
                self.shard_tel[i].misses.inc();
                None
            }
        };
        if let Some(sw) = sw {
            let ns = sw.elapsed_ns().saturating_mul(SAMPLE_SCALE);
            self.shard_tel[i].lock.hold_ns.add(ns);
            stage_add(Stage::CacheLookup, ns);
        }
        got
    }

    /// Inserts a freshly decoded graph, evicting LRU entries from its
    /// shard as needed. A graph larger than the whole shard budget is
    /// still admitted (the query could not proceed otherwise) after
    /// evicting everything else in the shard.
    pub fn insert(&self, key: GraphKey, graph: CachedGraph) -> Arc<CachedGraph> {
        let tick = self.next_tick();
        let bytes = graph.bytes();
        self.metrics.bytes_loaded.add(bytes as u64);
        self.log_event(CacheEvent::Load(key));
        let i = self.shard_index(&key);
        if wg_obs::trace_enabled() {
            // One event per cache load — rare (miss-bounded), and the
            // shard id arg is what makes FNV routing skew visible on the
            // trace timeline.
            let sw = Stopwatch::start();
            let kind = match key {
                GraphKey::Intra(_) => "intra",
                GraphKey::Super(..) => "super",
            };
            wg_obs::record_span_args(
                "core.cache.load",
                "core",
                &sw,
                &[("shard", itoa(i)), ("kind", kind)],
            );
        }
        let mut shard = self.lock_shard(i);
        let sw = telemetry_enabled().then(Stopwatch::start);
        // Evict until it fits (or nothing is left to evict).
        while shard.used + bytes > shard.budget {
            let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            else {
                break;
            };
            let Some(removed) = shard.map.remove(&victim) else {
                break;
            };
            shard.used -= removed.graph.bytes();
            self.metrics.evictions.inc();
            self.log_event(CacheEvent::Unload(victim));
        }
        let arc = Arc::new(graph);
        let prev = shard.map.insert(
            key,
            Entry {
                graph: Arc::clone(&arc),
                last_used: tick,
            },
        );
        if let Some(p) = prev {
            shard.used -= p.graph.bytes();
        }
        shard.used += bytes;
        if let Some(sw) = sw {
            let ns = sw.elapsed_ns();
            self.shard_tel[i].lock.hold_ns.add(ns);
            stage_add(Stage::CacheLookup, ns);
        }
        arc
    }

    /// The shard heatmap: per-shard hit/miss traffic, resident entries
    /// and bytes, and each shard mutex's contention profile. Lock timing
    /// is only collected while telemetry is enabled; hit/miss counters
    /// are always on.
    pub fn shard_telemetry(&self) -> Vec<wg_obs::ShardStat> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (entries, bytes) = {
                    let shard = s.lock();
                    (shard.map.len() as u64, shard.used as u64)
                };
                let tel = &self.shard_tel[i];
                wg_obs::ShardStat {
                    shard: i,
                    hits: tel.hits.get(),
                    misses: tel.misses.get(),
                    entries,
                    bytes,
                    lock: tel.lock.stats(),
                }
            })
            .collect()
    }

    /// Drops every cached graph (cold start between experiment runs).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock();
            let unloads: Vec<GraphKey> = shard.map.keys().copied().collect();
            shard.map.clear();
            shard.used = 0;
            drop(shard);
            for k in unloads {
                self.log_event(CacheEvent::Unload(k));
            }
        }
    }

    fn log_event(&self, ev: CacheEvent) {
        if let Some(log) = &mut *self.log.lock() {
            log.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(bytes_target: usize) -> CachedGraph {
        // Build lists whose accounted size is near bytes_target.
        let per_list = 64usize;
        let lists = bytes_target / per_list;
        CachedGraph::new(vec![
            vec![
                1u32;
                (per_list - std::mem::size_of::<Vec<u32>>()) / 4
            ];
            lists
        ])
    }

    #[test]
    fn hit_after_insert() {
        let c = GraphCache::new(1 << 20);
        assert!(c.get(GraphKey::Intra(3)).is_none());
        c.insert(GraphKey::Intra(3), CachedGraph::new(vec![vec![1, 2]]));
        assert!(c.get(GraphKey::Intra(3)).is_some());
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        let c = GraphCache::with_shards(10_000, 1);
        for i in 0..10u32 {
            c.insert(GraphKey::Intra(i), graph_of(3_000));
        }
        assert!(c.used() <= 10_000);
        assert!(c.stats().evictions > 0);
        // The most recent keys survive.
        assert!(c.get(GraphKey::Intra(9)).is_some());
        assert!(c.get(GraphKey::Intra(0)).is_none());
    }

    #[test]
    fn recently_used_graphs_survive() {
        let c = GraphCache::with_shards(10_000, 1);
        c.insert(GraphKey::Intra(0), graph_of(3_000));
        c.insert(GraphKey::Intra(1), graph_of(3_000));
        c.insert(GraphKey::Intra(2), graph_of(3_000));
        // Touch 0 so 1 becomes LRU.
        assert!(c.get(GraphKey::Intra(0)).is_some());
        c.insert(GraphKey::Intra(3), graph_of(3_000));
        assert!(c.get(GraphKey::Intra(0)).is_some(), "0 was touched");
        assert!(c.get(GraphKey::Intra(1)).is_none(), "1 was LRU");
    }

    #[test]
    fn oversized_graph_is_still_admitted() {
        let c = GraphCache::with_shards(1_000, 1);
        c.insert(GraphKey::Intra(0), graph_of(500));
        c.insert(GraphKey::Super(1, 2), graph_of(50_000));
        assert!(c.get(GraphKey::Super(1, 2)).is_some());
        assert!(c.get(GraphKey::Intra(0)).is_none(), "evicted for the giant");
    }

    #[test]
    fn reinsert_same_key_does_not_leak_bytes() {
        let c = GraphCache::new(1 << 20);
        c.insert(GraphKey::Intra(7), graph_of(2_000));
        let used_once = c.used();
        c.insert(GraphKey::Intra(7), graph_of(2_000));
        assert_eq!(c.used(), used_once);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shard_hash_is_process_independent() {
        // Pinned values: the shard a key lands in must never depend on a
        // per-process hasher seed, or the bench hit/miss counters drift
        // between the two CI passes. These constants are the FNV-1a
        // definition applied by hand.
        assert_eq!(shard_hash(&GraphKey::Intra(0)) % 8, 4);
        assert_eq!(shard_hash(&GraphKey::Super(0, 0)) % 8, 7);
        assert_eq!(
            shard_hash(&GraphKey::Intra(42)),
            shard_hash(&GraphKey::Intra(42))
        );
        assert_ne!(
            shard_hash(&GraphKey::Intra(1)),
            shard_hash(&GraphKey::Super(1, 1))
        );
    }

    #[test]
    fn sharded_cache_is_shared_across_threads() {
        let c = std::sync::Arc::new(GraphCache::new(1 << 20));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..64u32 {
                        let key = GraphKey::Intra(t * 64 + i);
                        c.insert(key, CachedGraph::new(vec![vec![i]]));
                        assert!(c.get(key).is_some());
                    }
                });
            }
        });
        assert_eq!(c.len(), 256);
    }

    /// An encoded intranode graph whose lists are similar enough that the
    /// windowed selector builds reference chains (so decodes populate the
    /// memo).
    fn chained_encoded_intra() -> CachedGraph {
        // Intranode universes equal the list count, so targets stay < 30.
        let base: Vec<u32> = (0..30).collect();
        let lists: Vec<Vec<u32>> = (0..30u32)
            .map(|i| {
                let mut l = base.clone();
                l.retain(|&x| x % 23 != i % 23);
                l
            })
            .collect();
        let enc = crate::refenc::encode_lists(
            &lists,
            30,
            crate::refenc::RefMode::Windowed(8),
            crate::codec::ListCodec::GAMMA,
        );
        let index = ListsIndex::parse(
            &enc.bytes,
            enc.bit_len,
            crate::refenc::Universe::SameAsCount,
            crate::codec::ListCodec::GAMMA,
        )
        .expect("parse");
        CachedGraph::new_encoded_intra(enc.bytes, enc.bit_len, index)
    }

    #[test]
    fn memo_cap_is_charged_at_construction() {
        let g = chained_encoded_intra();
        let CachedGraph::EncodedIntra {
            data, index, bytes, ..
        } = &g
        else {
            panic!("expected EncodedIntra");
        };
        let encoded = data.len() + index.heap_bytes();
        assert_eq!(g.memo_cap_bytes(), encoded, "cap = encoded footprint");
        assert_eq!(
            *bytes,
            encoded + g.memo_cap_bytes() + std::mem::size_of::<CachedGraph>(),
            "accounted bytes include the full memo cap up front"
        );
        assert_eq!(g.memo_used(), 0, "memo starts empty");
    }

    #[test]
    fn memo_growth_is_pre_budgeted_and_freed_by_clear() {
        let c = GraphCache::new(1 << 20);
        let g = c.insert(GraphKey::Intra(0), chained_encoded_intra());
        let used_after_insert = c.used();
        // Deep-end-first decodes walk every reference chain and retain
        // ancestors in the memo.
        let n = match &*g {
            CachedGraph::EncodedIntra { index, .. } => index.num_lists(),
            _ => unreachable!(),
        };
        for i in (0..n).rev() {
            g.decode_list_for(i).expect("decode");
        }
        assert!(g.memo_used() > 0, "chained decodes must populate the memo");
        assert!(g.memo_used() <= g.memo_cap_bytes(), "memo bounded by cap");
        assert_eq!(
            c.used(),
            used_after_insert,
            "memo growth is statically reserved, never re-accounted"
        );
        // Clearing the cache drops the graph and its memo wholesale.
        c.clear();
        assert_eq!(c.used(), 0, "no bytes leak across a cache clear");
        drop(g);
        // A fresh admission of the same graph charges the same bytes: the
        // memo of the evicted instance left nothing behind.
        c.insert(GraphKey::Intra(0), chained_encoded_intra());
        assert_eq!(c.used(), used_after_insert);
    }

    #[test]
    fn shard_telemetry_reports_per_shard_traffic() {
        let c = GraphCache::new(1 << 20);
        c.insert(GraphKey::Intra(0), CachedGraph::new(vec![vec![1]]));
        assert!(c.get(GraphKey::Intra(0)).is_some());
        assert!(c.get(GraphKey::Intra(1)).is_none());
        let tel = c.shard_telemetry();
        assert_eq!(tel.len(), DEFAULT_CACHE_SHARDS);
        // Intra(0) routes to shard 4 (the pinned FNV-1a value above).
        assert_eq!(tel[4].hits, 1);
        assert_eq!(tel[4].entries, 1);
        assert!(tel[4].bytes > 0);
        let split_hits: u64 = tel.iter().map(|s| s.hits).sum();
        let split_misses: u64 = tel.iter().map(|s| s.misses).sum();
        assert_eq!(split_hits, c.stats().hits, "per-shard split sums to total");
        assert_eq!(split_misses, c.stats().misses);
    }

    #[test]
    fn shard_lock_telemetry_counts_acquisitions_when_enabled() {
        wg_obs::set_telemetry_enabled(true);
        let c = GraphCache::new(1 << 20);
        c.insert(GraphKey::Intra(3), CachedGraph::new(vec![vec![1]]));
        assert!(c.get(GraphKey::Intra(3)).is_some());
        let tel = c.shard_telemetry();
        let acq: u64 = tel.iter().map(|s| s.lock.acquisitions).sum();
        assert_eq!(acq, 2, "insert + get each acquire the shard lock once");
        wg_obs::set_telemetry_enabled(false);
        assert!(c.get(GraphKey::Intra(3)).is_some());
        let acq_after: u64 = c
            .shard_telemetry()
            .iter()
            .map(|s| s.lock.acquisitions)
            .sum();
        assert_eq!(acq_after, 2, "telemetry off: lock sites cost one load");
    }

    #[test]
    fn clear_empties_everything() {
        let c = GraphCache::new(1 << 20);
        c.insert(GraphKey::Intra(0), graph_of(1_000));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn event_log_records_loads_and_unloads() {
        let c = GraphCache::with_shards(7_000, 1);
        c.enable_log();
        c.insert(GraphKey::Intra(0), graph_of(3_000));
        c.insert(GraphKey::Intra(1), graph_of(3_000));
        c.insert(GraphKey::Intra(2), graph_of(3_000)); // evicts 0
        let log = c.take_log();
        assert!(log.contains(&CacheEvent::Load(GraphKey::Intra(0))));
        assert!(log.contains(&CacheEvent::Unload(GraphKey::Intra(0))));
        assert!(log.contains(&CacheEvent::Load(GraphKey::Intra(2))));
        // take_log drains.
        assert!(c.take_log().is_empty());
    }
}
