//! Memory-budgeted cache of decoded intranode / superedge graphs.
//!
//! The §4.3 experiments give each representation a fixed memory allowance;
//! for S-Node, whatever is left after the resident supernode graph and
//! indexes "was used to load and decode intranode and superedge graphs as
//! required by the queries". This cache is that space: decoded graphs enter
//! on first use, are evicted least-recently-used when the byte budget
//! overflows, and every load/unload is recorded — the paper instrumented
//! exactly these events to explain its Figure 11 numbers.

use crate::refenc::ListsIndex;
use crate::subgraphs::SuperedgeIndex;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of a cached graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKey {
    /// The intranode graph of supernode `s`.
    Intra(u32),
    /// The superedge graph of superedge `from → to`.
    Super(u32, u32),
}

/// A decoded graph: positive adjacency lists in local ids.
///
/// Intranode graphs are dense (one list per page of the supernode);
/// superedge graphs are kept **sparse** — only the sources with cross-links
/// are materialised, since on a Web-scale partition the overwhelming
/// majority of a supernode's pages have no links into any one neighbour.
#[derive(Debug)]
pub enum CachedGraph {
    /// One list per local id.
    Dense {
        /// `lists[local]` = sorted local targets.
        lists: Vec<Vec<u32>>,
        /// Approximate decoded footprint (drives eviction).
        bytes: usize,
    },
    /// Lists only for the sources that have any.
    Sparse {
        /// Sorted local source ids with non-empty lists.
        sources: Vec<u32>,
        /// Parallel target lists.
        lists: Vec<Vec<u32>>,
        /// Approximate decoded footprint (drives eviction).
        bytes: usize,
    },
    /// An intranode graph kept *encoded*, with its parsed directory;
    /// individual lists decode on demand. This is the query-time resident
    /// form: it keeps a supernode's working set close to its on-disk size
    /// instead of its decoded size, which is what lets the §4.3 memory
    /// caps hold "all the intranode and superedge graphs relevant to a
    /// query" at once.
    EncodedIntra {
        /// The encoded graph.
        data: Vec<u8>,
        /// Exact bit length.
        bit_len: u64,
        /// Parsed directory (offsets rebuilt at load).
        index: ListsIndex,
        /// Resident footprint (encoded bytes + directory).
        bytes: usize,
    },
    /// A superedge graph kept encoded, with its parsed directory.
    EncodedSuper {
        /// The encoded graph.
        data: Vec<u8>,
        /// Exact bit length.
        bit_len: u64,
        /// Parsed directory.
        index: SuperedgeIndex,
        /// `|Nj|`, needed to complement negative representations.
        nj: u64,
        /// Resident footprint.
        bytes: usize,
    },
}

impl CachedGraph {
    /// Wraps dense decoded lists, computing the footprint.
    pub fn new(lists: Vec<Vec<u32>>) -> Self {
        let bytes: usize = lists
            .iter()
            .map(|l| l.len() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum::<usize>()
            + std::mem::size_of::<Self>();
        CachedGraph::Dense { lists, bytes }
    }

    /// Wraps sparse decoded lists, computing the footprint.
    pub fn new_sparse(sources: Vec<u32>, lists: Vec<Vec<u32>>) -> Self {
        debug_assert_eq!(sources.len(), lists.len());
        let bytes: usize = lists
            .iter()
            .map(|l| l.len() * 4 + std::mem::size_of::<Vec<u32>>() + 4)
            .sum::<usize>()
            + std::mem::size_of::<Self>();
        CachedGraph::Sparse {
            sources,
            lists,
            bytes,
        }
    }

    /// Wraps an encoded intranode graph with its parsed directory.
    pub fn new_encoded_intra(data: Vec<u8>, bit_len: u64, index: ListsIndex) -> Self {
        let bytes = data.len() + index.heap_bytes() + std::mem::size_of::<Self>();
        CachedGraph::EncodedIntra {
            data,
            bit_len,
            index,
            bytes,
        }
    }

    /// Wraps an encoded superedge graph with its parsed directory.
    pub fn new_encoded_super(data: Vec<u8>, bit_len: u64, index: SuperedgeIndex, nj: u64) -> Self {
        let bytes = data.len() + index.heap_bytes() + std::mem::size_of::<Self>();
        CachedGraph::EncodedSuper {
            data,
            bit_len,
            index,
            nj,
            bytes,
        }
    }

    /// The positive target list of local id `local` (empty when absent).
    pub fn decode_list_for(&self, local: u32) -> crate::Result<Vec<u32>> {
        match self {
            CachedGraph::Dense { lists, .. } => {
                Ok(lists.get(local as usize).cloned().unwrap_or_default())
            }
            CachedGraph::Sparse { sources, lists, .. } => match sources.binary_search(&local) {
                Ok(i) => Ok(lists[i].clone()),
                Err(_) => Ok(Vec::new()),
            },
            CachedGraph::EncodedIntra {
                data,
                bit_len,
                index,
                ..
            } => index.decode_list(data, *bit_len, local),
            CachedGraph::EncodedSuper {
                data,
                bit_len,
                index,
                nj,
                ..
            } => index.targets_of(data, *bit_len, u64::from(local), *nj),
        }
    }

    /// Approximate resident footprint in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            CachedGraph::Dense { bytes, .. }
            | CachedGraph::Sparse { bytes, .. }
            | CachedGraph::EncodedIntra { bytes, .. }
            | CachedGraph::EncodedSuper { bytes, .. } => *bytes,
        }
    }
}

/// One cache instrumentation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A graph was decoded into the cache.
    Load(GraphKey),
    /// A graph was evicted to make room.
    Unload(GraphKey),
}

/// Aggregate cache statistics: a point-in-time view over the cache's
/// [`wg_obs::CacheMetrics`] counters (the counters are the source of
/// truth; under `--metrics` they are shared with the global registry as
/// `core.cache.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphCacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups requiring a load.
    pub misses: u64,
    /// Graphs evicted.
    pub evictions: u64,
    /// Total bytes decoded over the lifetime (load traffic).
    pub bytes_loaded: u64,
}

/// LRU cache of decoded graphs under a byte budget.
#[derive(Debug)]
pub struct GraphCache {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<GraphKey, Entry>,
    metrics: wg_obs::CacheMetrics,
    /// When `Some`, every load/unload is appended here (the paper's log).
    log: Option<Vec<CacheEvent>>,
}

#[derive(Debug)]
struct Entry {
    graph: Arc<CachedGraph>,
    last_used: u64,
}

impl GraphCache {
    /// Creates a cache bounded by `budget_bytes` of decoded graph data.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes.max(1),
            used: 0,
            tick: 0,
            map: HashMap::new(),
            metrics: wg_obs::CacheMetrics::auto("core.cache"),
            log: None,
        }
    }

    /// Enables event logging (disabled by default; the log grows unbounded
    /// while enabled).
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Takes the accumulated event log, leaving logging enabled.
    pub fn take_log(&mut self) -> Vec<CacheEvent> {
        match &mut self.log {
            Some(l) => std::mem::take(l),
            None => Vec::new(),
        }
    }

    /// Byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently cached.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of graphs currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Statistics so far (a view over the obs counters).
    pub fn stats(&self) -> GraphCacheStats {
        GraphCacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            evictions: self.metrics.evictions.get(),
            bytes_loaded: self.metrics.bytes_loaded.get(),
        }
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.metrics.reset();
    }

    /// Looks up a graph, bumping its recency.
    pub fn get(&mut self, key: GraphKey) -> Option<Arc<CachedGraph>> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.metrics.hits.inc();
                Some(Arc::clone(&e.graph))
            }
            None => {
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Inserts a freshly decoded graph, evicting LRU entries as needed.
    /// A graph larger than the whole budget is still admitted (the query
    /// could not proceed otherwise) after evicting everything else.
    pub fn insert(&mut self, key: GraphKey, graph: CachedGraph) -> Arc<CachedGraph> {
        self.tick += 1;
        let bytes = graph.bytes();
        self.metrics.bytes_loaded.add(bytes as u64);
        if let Some(log) = &mut self.log {
            log.push(CacheEvent::Load(key));
        }
        // Evict until it fits (or nothing is left to evict).
        while self.used + bytes > self.budget {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            else {
                break;
            };
            let Some(removed) = self.map.remove(&victim) else {
                break;
            };
            self.used -= removed.graph.bytes();
            self.metrics.evictions.inc();
            if let Some(log) = &mut self.log {
                log.push(CacheEvent::Unload(victim));
            }
        }
        let arc = Arc::new(graph);
        let prev = self.map.insert(
            key,
            Entry {
                graph: Arc::clone(&arc),
                last_used: self.tick,
            },
        );
        if let Some(p) = prev {
            self.used -= p.graph.bytes();
        }
        self.used += bytes;
        arc
    }

    /// Drops every cached graph (cold start between experiment runs).
    pub fn clear(&mut self) {
        if let Some(log) = &mut self.log {
            log.extend(self.map.keys().map(|&k| CacheEvent::Unload(k)));
        }
        self.map.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(bytes_target: usize) -> CachedGraph {
        // Build lists whose accounted size is near bytes_target.
        let per_list = 64usize;
        let lists = bytes_target / per_list;
        CachedGraph::new(vec![
            vec![
                1u32;
                (per_list - std::mem::size_of::<Vec<u32>>()) / 4
            ];
            lists
        ])
    }

    #[test]
    fn hit_after_insert() {
        let mut c = GraphCache::new(1 << 20);
        assert!(c.get(GraphKey::Intra(3)).is_none());
        c.insert(GraphKey::Intra(3), CachedGraph::new(vec![vec![1, 2]]));
        assert!(c.get(GraphKey::Intra(3)).is_some());
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        let mut c = GraphCache::new(10_000);
        for i in 0..10u32 {
            c.insert(GraphKey::Intra(i), graph_of(3_000));
        }
        assert!(c.used() <= 10_000);
        assert!(c.stats().evictions > 0);
        // The most recent keys survive.
        assert!(c.get(GraphKey::Intra(9)).is_some());
        assert!(c.get(GraphKey::Intra(0)).is_none());
    }

    #[test]
    fn recently_used_graphs_survive() {
        let mut c = GraphCache::new(10_000);
        c.insert(GraphKey::Intra(0), graph_of(3_000));
        c.insert(GraphKey::Intra(1), graph_of(3_000));
        c.insert(GraphKey::Intra(2), graph_of(3_000));
        // Touch 0 so 1 becomes LRU.
        assert!(c.get(GraphKey::Intra(0)).is_some());
        c.insert(GraphKey::Intra(3), graph_of(3_000));
        assert!(c.get(GraphKey::Intra(0)).is_some(), "0 was touched");
        assert!(c.get(GraphKey::Intra(1)).is_none(), "1 was LRU");
    }

    #[test]
    fn oversized_graph_is_still_admitted() {
        let mut c = GraphCache::new(1_000);
        c.insert(GraphKey::Intra(0), graph_of(500));
        c.insert(GraphKey::Super(1, 2), graph_of(50_000));
        assert!(c.get(GraphKey::Super(1, 2)).is_some());
        assert!(c.get(GraphKey::Intra(0)).is_none(), "evicted for the giant");
    }

    #[test]
    fn reinsert_same_key_does_not_leak_bytes() {
        let mut c = GraphCache::new(1 << 20);
        c.insert(GraphKey::Intra(7), graph_of(2_000));
        let used_once = c.used();
        c.insert(GraphKey::Intra(7), graph_of(2_000));
        assert_eq!(c.used(), used_once);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = GraphCache::new(1 << 20);
        c.insert(GraphKey::Intra(0), graph_of(1_000));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn event_log_records_loads_and_unloads() {
        let mut c = GraphCache::new(7_000);
        c.enable_log();
        c.insert(GraphKey::Intra(0), graph_of(3_000));
        c.insert(GraphKey::Intra(1), graph_of(3_000));
        c.insert(GraphKey::Intra(2), graph_of(3_000)); // evicts 0
        let log = c.take_log();
        assert!(log.contains(&CacheEvent::Load(GraphKey::Intra(0))));
        assert!(log.contains(&CacheEvent::Unload(GraphKey::Intra(0))));
        assert!(log.contains(&CacheEvent::Load(GraphKey::Intra(2))));
        // take_log drains.
        assert!(c.take_log().is_empty());
    }
}
