//! Queryable S-Node handles.
//!
//! Two access paths, matching the paper's two experimental setups:
//!
//! * [`SNode`] — the disk-backed representation used by the §4.3 query
//!   experiments: the supernode graph, PageID index and domain index stay
//!   resident; intranode and superedge graphs are read from the index
//!   files, decoded, and held in a byte-budgeted [`GraphCache`].
//! * [`SNodeInMemory`] — the Table 2 setup: all *encoded* graphs resident
//!   in memory with pre-parsed directories, each adjacency-list access
//!   paying the S-Node decode cost (reference-chain walk) but no I/O and
//!   no cache management.

use crate::cache::{CacheEvent, CachedGraph, GraphCache, GraphCacheStats, GraphKey};
use crate::disk::{GraphLocator, IndexFileReader, SNodeMeta};
use crate::integrity::{IntegrityCounters, IntegrityManifest};
use crate::refenc::{ListsIndex, Universe};
use crate::subgraphs::SuperedgeIndex;
use crate::{Result, SNodeError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;
use wg_graph::PageId;

/// What graceful degradation cost a representation so far.
///
/// Semantics: a **quarantined supernode** is one with at least one
/// checksum- or decode-damaged graph (its intranode graph or one of its
/// outgoing superedge graphs); a **skipped edge part** is one
/// adjacency-list contribution (one intranode or superedge list access)
/// omitted from an answer because its graph is quarantined. Parts are the
/// unit because a damaged blob cannot be decoded to count the exact edges
/// it held. `retries` counts transient read errors absorbed by the I/O
/// shim's bounded backoff since the representation was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// Distinct supernodes with at least one quarantined graph.
    pub quarantined_supernodes: u64,
    /// Adjacency-list parts omitted from answers due to quarantine.
    pub skipped_edges: u64,
    /// Transient read errors retried successfully since open.
    pub retries: u64,
}

impl DegradedReport {
    /// True when no answer was affected by quarantine.
    pub fn is_clean(&self) -> bool {
        self.quarantined_supernodes == 0 && self.skipped_edges == 0
    }
}

/// Which graph a quarantine event targets.
#[derive(Debug, Clone, Copy)]
enum Quarantine {
    Intra(u32),
    Super(u32, u32),
}

/// Registry counters for quarantine events, created only when metrics
/// were enabled at open time. Incremented on *new* events (first
/// quarantine of a supernode, each skipped part), so snapshot deltas give
/// accurate per-query degradation counts.
#[derive(Debug)]
struct DegradeCounters {
    quarantined_supernodes: wg_obs::Counter,
    skipped_edges: wg_obs::Counter,
}

/// Quarantine bookkeeping, present only in degraded-open mode.
#[derive(Debug)]
struct DegradeState {
    quarantined_intra: HashSet<u32>,
    quarantined_super: HashSet<(u32, u32)>,
    quarantined_sn: HashSet<u32>,
    skipped_parts: u64,
    global: Option<DegradeCounters>,
}

impl DegradeState {
    fn new() -> Self {
        let global = if wg_obs::metrics_enabled() {
            let reg = wg_obs::global();
            Some(DegradeCounters {
                quarantined_supernodes: reg.counter("integrity.quarantined_supernodes"),
                skipped_edges: reg.counter("integrity.skipped_edges"),
            })
        } else {
            None
        };
        Self {
            quarantined_intra: HashSet::new(),
            quarantined_super: HashSet::new(),
            quarantined_sn: HashSet::new(),
            skipped_parts: 0,
            global,
        }
    }

    fn mark_supernode(&mut self, s: u32) {
        if self.quarantined_sn.insert(s) {
            if let Some(g) = &self.global {
                g.quarantined_supernodes.inc();
            }
        }
    }

    fn skip(&mut self) {
        self.skipped_parts += 1;
        if let Some(g) = &self.global {
            g.skipped_edges.inc();
        }
    }
}

/// Registry counters for the navigation path, created only when metrics
/// were enabled at open time (the `core.nav.*` names of the paper's
/// per-query access quantities).
#[derive(Debug)]
struct NavCounters {
    calls: wg_obs::Counter,
    supernodes_visited: wg_obs::Counter,
    intra_lists_decoded: wg_obs::Counter,
    super_lists_decoded: wg_obs::Counter,
    batched_lookups: wg_obs::Counter,
}

impl NavCounters {
    fn auto() -> Option<Self> {
        if !wg_obs::metrics_enabled() {
            return None;
        }
        let reg = wg_obs::global();
        Some(Self {
            calls: reg.counter("core.nav.calls"),
            supernodes_visited: reg.counter("core.nav.supernodes_visited"),
            intra_lists_decoded: reg.counter("core.nav.intra_lists_decoded"),
            super_lists_decoded: reg.counter("core.nav.super_lists_decoded"),
            batched_lookups: reg.counter("core.nav.batched_lookups"),
        })
    }
}

/// Reusable buffers of the batched navigation path, kept on the handle so
/// steady-state BFS levels allocate nothing new.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Input positions sorted by page id (groups pages per supernode).
    order: Vec<u32>,
    /// Per input position, the assembled adjacency list.
    results: Vec<Vec<PageId>>,
    /// One decoded local list at a time.
    tmp: Vec<u32>,
    /// `(target-range start, part slot)` per contributing graph of the
    /// current group; `u32::MAX` is the intranode slot.
    part_order: Vec<(u32, u32)>,
}

/// Disk-backed S-Node representation with a memory-budgeted graph cache.
///
/// The handle is `Sync`: everything decoded at open (`meta`, `blob_base`,
/// the manifest) is immutable, and all query-time mutation lives in the
/// sharded [`GraphCache`], the per-graph list memos, the scratch-buffer
/// pool, and the lock-guarded quarantine state — so any number of threads
/// can navigate one shared handle through `&self` (DESIGN.md §5f).
#[derive(Debug)]
pub struct SNode {
    meta: SNodeMeta,
    files: IndexFileReader,
    cache: GraphCache,
    nav: Option<NavCounters>,
    /// Pool of reusable batch buffers: a navigation call pops one (or
    /// starts fresh), runs, and returns it, so the steady state of N
    /// concurrent readers holds N warm scratches and allocates nothing.
    scratch: Mutex<Vec<BatchScratch>>,
    /// Per-blob CRCs and file sums from `sums.bin`; `None` for v1
    /// directories (readable, unverified).
    manifest: Option<IntegrityManifest>,
    /// `blob_base[s]` = linear blob index of supernode `s`'s intranode
    /// graph; superedge `k` of `s` is blob `blob_base[s] + 1 + k`.
    blob_base: Vec<u64>,
    integrity: IntegrityCounters,
    degrade: Option<RwLock<DegradeState>>,
    retries_at_open: u64,
}

impl SNode {
    /// Opens the representation under `dir` with a decoded-graph budget of
    /// `cache_budget_bytes` (the experiment's memory cap, §4.3).
    ///
    /// Strict mode: any checksum or decode failure surfaces as an error.
    pub fn open(dir: &Path, cache_budget_bytes: usize) -> Result<Self> {
        Self::open_mode(dir, cache_budget_bytes, false, false)
    }

    /// Opens with graceful degradation: a damaged intranode or superedge
    /// graph is quarantined instead of failing the query, answers omit its
    /// contribution, and [`SNode::degraded`] reports what was skipped.
    /// The resident metadata (`meta.bin`) must still verify — it is the
    /// index everything else hangs off, so there is nothing to degrade to.
    pub fn open_degraded(dir: &Path, cache_budget_bytes: usize) -> Result<Self> {
        Self::open_mode(dir, cache_budget_bytes, true, false)
    }

    /// Opens with the index files resident: graph loads borrow slices of
    /// one shared immutable image per file instead of copying bytes out
    /// (the `mmap` analogue under the workspace's `forbid(unsafe_code)` —
    /// see [`wg_store::Region`]). Navigation answers, disk-read counters,
    /// and cache behaviour are identical to [`SNode::open`]; the trade is
    /// the upfront residency cost (the encoded index files, reported by
    /// [`SNode::resident_bytes`]) for allocation-free steady-state reads.
    /// Strict integrity mode: resident service wants loud corruption.
    pub fn open_resident(dir: &Path, cache_budget_bytes: usize) -> Result<Self> {
        Self::open_mode(dir, cache_budget_bytes, false, true)
    }

    fn open_mode(
        dir: &Path,
        cache_budget_bytes: usize,
        degrade: bool,
        resident: bool,
    ) -> Result<Self> {
        let integrity = IntegrityCounters::new();
        // A corrupt manifest in degraded mode downgrades to "unverified"
        // (counted as a failure); strict mode refuses to guess.
        let manifest = match IntegrityManifest::read(dir) {
            Ok(m) => m,
            Err(_) if degrade => {
                integrity.failure();
                None
            }
            Err(e) => return Err(e),
        };
        let meta_buf = crate::disk::read_whole_file(&dir.join("meta.bin"))?;
        if let Some(m) = &manifest {
            integrity.check();
            if let Err(e) = m.check_file_bytes("meta.bin", &meta_buf) {
                integrity.failure();
                return Err(e);
            }
        }
        let meta = SNodeMeta::parse(&meta_buf)?;
        let mut blob_base = Vec::with_capacity(meta.num_supernodes() as usize + 1);
        let mut acc = 0u64;
        blob_base.push(0);
        for adj in &meta.supergraph.adj {
            acc += 1 + adj.len() as u64;
            blob_base.push(acc);
        }
        let manifest = match manifest {
            Some(m) if m.blob_crc.len() as u64 != acc => {
                integrity.failure();
                if degrade {
                    None
                } else {
                    return Err(SNodeError::Corrupt(
                        "integrity manifest blob count mismatch",
                    ));
                }
            }
            other => other,
        };
        let files = if resident {
            IndexFileReader::open_resident(dir)?
        } else {
            IndexFileReader::open(dir)?
        };
        Ok(Self {
            meta,
            files,
            cache: GraphCache::new(cache_budget_bytes),
            nav: NavCounters::auto(),
            scratch: Mutex::new(Vec::new()),
            manifest,
            blob_base,
            integrity,
            degrade: degrade.then(|| RwLock::new(DegradeState::new())),
            retries_at_open: wg_fault::retries_performed(),
        })
    }

    /// Degradation summary: quarantined supernodes, skipped adjacency
    /// parts, and transient-read retries since open. All zeros (except
    /// possibly retries) for a clean directory or a strict open.
    pub fn degraded(&self) -> DegradedReport {
        let retries = wg_fault::retries_performed().saturating_sub(self.retries_at_open);
        match &self.degrade {
            Some(d) => {
                let d = d.read();
                DegradedReport {
                    quarantined_supernodes: d.quarantined_sn.len() as u64,
                    skipped_edges: d.skipped_parts,
                    retries,
                }
            }
            None => DegradedReport {
                retries,
                ..DegradedReport::default()
            },
        }
    }

    /// Integrity verifications performed and failed by this handle.
    pub fn integrity_stats(&self) -> (u64, u64) {
        (self.integrity.checks(), self.integrity.failures())
    }

    /// Whether blob reads are verified against an integrity manifest.
    pub fn verifies_checksums(&self) -> bool {
        self.manifest.is_some()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.meta.num_pages
    }

    /// Number of supernodes.
    pub fn num_supernodes(&self) -> u32 {
        self.meta.num_supernodes()
    }

    /// Resident metadata (supernode graph, PageID + domain indexes).
    pub fn meta(&self) -> &SNodeMeta {
        &self.meta
    }

    /// Supernode owning page `p`.
    pub fn supernode_of(&self, p: PageId) -> u32 {
        self.meta.supernode_of(p)
    }

    /// Page-id range of supernode `s`.
    pub fn page_range(&self, s: u32) -> std::ops::Range<u32> {
        self.meta.page_range(s)
    }

    /// Supernodes holding pages of `domain` (from the resident domain
    /// index).
    pub fn supernodes_of_domain(&self, domain: u32) -> &[u32] {
        self.meta
            .domain_supernodes
            .get(domain as usize)
            .map_or(&[], |v| v.as_slice())
    }

    /// All page ids of `domain` (union of its supernodes' ranges).
    pub fn pages_in_domain(&self, domain: u32) -> Vec<PageId> {
        let mut out = Vec::new();
        for &s in self.supernodes_of_domain(domain) {
            out.extend(self.page_range(s));
        }
        out.sort_unstable();
        out
    }

    /// The complete adjacency list of page `p`, assembled from the
    /// intranode graph of its supernode and all out-superedge graphs —
    /// exactly the paper's observation that "the adjacency list of a page
    /// is partitioned across an intranode graph and a set of one or more
    /// superedge graphs".
    pub fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        self.out_neighbors_into(p, &mut out)?;
        Ok(out)
    }

    /// Zero-alloc variant of [`SNode::out_neighbors`]: clears `out` and
    /// fills it with the sorted adjacency list of `p`, reusing the
    /// handle's internal decode buffers.
    pub fn out_neighbors_into(&self, p: PageId, out: &mut Vec<PageId>) -> Result<()> {
        out.clear();
        let pages = [p];
        self.batch_inner(&pages, &mut |_, list| out.extend_from_slice(list), false)
    }

    /// Batched navigation: answers `out_neighbors` for every page in
    /// `pages`, grouping pages of the same supernode so each group's
    /// intranode and superedge graphs are looked up (and counted) once.
    /// `visit` is invoked exactly once per input page, **in input order**,
    /// so callers with order-sensitive accumulation (Q1's f64 weights)
    /// observe the same sequence as a scalar loop.
    pub fn out_neighbors_batch(
        &self,
        pages: &[PageId],
        visit: &mut dyn FnMut(PageId, &[PageId]),
    ) -> Result<()> {
        self.batch_inner(pages, visit, true)
    }

    /// Checked superedge-slot index: the `u32::MAX` sentinel marks the
    /// intranode part in `part_order`, so a real slot may never equal it.
    fn slot_index(k: usize) -> Result<u32> {
        u32::try_from(k)
            .ok()
            .filter(|&v| v != u32::MAX)
            .ok_or(SNodeError::Corrupt("superedge slot index overflows u32"))
    }

    fn batch_inner(
        &self,
        pages: &[PageId],
        visit: &mut dyn FnMut(PageId, &[PageId]),
        count_batched: bool,
    ) -> Result<()> {
        let mut scratch = self.scratch.lock().pop().unwrap_or_default();
        let r = self.batch_run(pages, visit, count_batched, &mut scratch);
        self.scratch.lock().push(scratch);
        r
    }

    fn batch_run(
        &self,
        pages: &[PageId],
        visit: &mut dyn FnMut(PageId, &[PageId]),
        count_batched: bool,
        scratch: &mut BatchScratch,
    ) -> Result<()> {
        let n = pages.len();
        scratch.order.clear();
        scratch.order.extend(0..n as u32);
        scratch.order.sort_unstable_by_key(|&i| pages[i as usize]);
        if scratch.results.len() < n {
            scratch.results.resize_with(n, Vec::new);
        }
        for r in &mut scratch.results[..n] {
            r.clear();
        }

        let mut g = 0usize;
        while g < n {
            let s = self.meta.supernode_of(pages[scratch.order[g] as usize]);
            let range = self.meta.page_range(s);
            let mut end = g + 1;
            while end < n && range.contains(&pages[scratch.order[end] as usize]) {
                end += 1;
            }

            // One lookup per graph per group; counters charge the group as
            // a whole (this is where batching beats the scalar path).
            let mut intra = self.intranode(s)?;
            let targets = self.meta.supergraph.adj[s as usize].clone();
            if let Some(nav) = &self.nav {
                nav.calls.add((end - g) as u64);
                nav.supernodes_visited.inc();
                nav.intra_lists_decoded.inc();
                nav.super_lists_decoded.add(targets.len() as u64);
                if count_batched {
                    nav.batched_lookups.add(1 + targets.len() as u64);
                }
            }
            // (target-range start, target supernode, graph) per superedge.
            let mut supers: Vec<(u32, u32, Option<Arc<CachedGraph>>)> =
                Vec::with_capacity(targets.len());
            for (k, j) in targets.into_iter().enumerate() {
                let graph = self.superedge(s, Self::slot_index(k)?, j)?;
                supers.push((self.meta.page_range(j).start, j, graph));
            }
            // Ranges are disjoint and each local list is sorted, so
            // decoding parts in ascending range-start order yields a
            // globally sorted adjacency list with no final sort.
            scratch.part_order.clear();
            scratch.part_order.push((range.start, u32::MAX));
            for (k, &(j_start, _, _)) in supers.iter().enumerate() {
                scratch.part_order.push((j_start, Self::slot_index(k)?));
            }
            scratch.part_order.sort_unstable_by_key(|&(start, _)| start);

            for gi in g..end {
                let oi = scratch.order[gi] as usize;
                let p = pages[oi];
                let local = p - range.start;
                for pi in 0..scratch.part_order.len() {
                    let (start, slot) = scratch.part_order[pi];
                    let graph = if slot == u32::MAX {
                        intra.clone()
                    } else {
                        supers[slot as usize].2.clone()
                    };
                    match graph {
                        Some(gr) => match gr.decode_list_into(local, &mut scratch.tmp) {
                            Ok(()) => {
                                scratch.results[oi].extend(scratch.tmp.iter().map(|&t| start + t));
                            }
                            Err(e) => {
                                if slot == u32::MAX {
                                    self.quarantine(Quarantine::Intra(s), e)?;
                                    intra = None;
                                } else {
                                    let j = supers[slot as usize].1;
                                    self.quarantine(Quarantine::Super(s, j), e)?;
                                    supers[slot as usize].2 = None;
                                }
                                self.note_skip();
                            }
                        },
                        None => self.note_skip(),
                    }
                }
            }
            g = end;
        }
        for (oi, &p) in pages.iter().enumerate() {
            visit(p, &scratch.results[oi]);
        }
        Ok(())
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> GraphCacheStats {
        self.cache.stats()
    }

    /// Physical graph reads from the index files.
    pub fn disk_reads(&self) -> u64 {
        self.files.read_count()
    }

    /// Clears the decoded-graph cache (cold start) and resets statistics.
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.cache.reset_stats();
    }

    /// The graph cache's per-shard heatmap (see
    /// [`GraphCache::shard_telemetry`]).
    pub fn shard_telemetry(&self) -> Vec<wg_obs::ShardStat> {
        self.cache.shard_telemetry()
    }

    /// Enables cache event logging.
    pub fn enable_cache_log(&self) {
        self.cache.enable_log();
    }

    /// Drains the cache event log.
    pub fn take_cache_log(&self) -> Vec<CacheEvent> {
        self.cache.take_log()
    }

    /// True when the index files are resident (zero-copy graph loads).
    pub fn is_resident(&self) -> bool {
        self.files.is_resident()
    }

    /// Bytes pinned by the resident index-file images (0 when opened in
    /// the default positioned-read mode). Scale benchmarks subtract this
    /// from process RSS to check that *query* memory stays flat.
    pub fn resident_bytes(&self) -> u64 {
        self.files.resident_bytes()
    }

    /// Reads one blob and verifies it against the manifest when present.
    fn load_blob(&self, loc: &GraphLocator, blob_idx: u64) -> Result<crate::disk::Blob> {
        let bytes = self.files.read_blob(loc)?;
        if let Some(m) = &self.manifest {
            self.integrity.check();
            let expected = m
                .blob_crc
                .get(blob_idx as usize)
                .copied()
                .ok_or(SNodeError::Corrupt("blob index beyond manifest table"))?;
            if wg_fault::crc32c(&bytes) != expected {
                self.integrity.failure();
                return Err(SNodeError::Corrupt("graph blob checksum mismatch"));
            }
        }
        Ok(bytes)
    }

    /// In degraded mode records the quarantine and succeeds; in strict
    /// mode propagates the failure.
    fn quarantine(&self, q: Quarantine, e: SNodeError) -> Result<()> {
        let Some(d) = &self.degrade else {
            return Err(e);
        };
        let mut d = d.write();
        match q {
            Quarantine::Intra(s) => {
                d.quarantined_intra.insert(s);
                d.mark_supernode(s);
            }
            Quarantine::Super(s, j) => {
                d.quarantined_super.insert((s, j));
                d.mark_supernode(s);
            }
        }
        Ok(())
    }

    fn note_skip(&self) {
        if let Some(d) = &self.degrade {
            d.write().skip();
        }
    }

    /// `Ok(None)` means the graph is quarantined (degraded mode only);
    /// the caller counts the skipped part per access.
    fn intranode(&self, s: u32) -> Result<Option<Arc<CachedGraph>>> {
        if let Some(d) = &self.degrade {
            if d.read().quarantined_intra.contains(&s) {
                return Ok(None);
            }
        }
        let key = GraphKey::Intra(s);
        if let Some(g) = self.cache.get(key) {
            return Ok(Some(g));
        }
        let loc = self.meta.intranode_loc[s as usize];
        // Miss path: blob read + directory parse is decode work for stage
        // attribution (the cache's own admission time is CacheLookup).
        let sw = wg_obs::telemetry_enabled().then(wg_obs::Stopwatch::start);
        let parsed = self
            .load_blob(&loc, self.blob_base[s as usize])
            .and_then(|bytes| {
                let index = ListsIndex::parse(
                    &bytes,
                    loc.bit_len,
                    Universe::SameAsCount,
                    self.meta.codec.intra,
                )?;
                Ok((bytes, index))
            });
        if let Some(sw) = sw {
            wg_obs::stage_add(wg_obs::Stage::ListDecode, sw.elapsed_ns());
        }
        match parsed {
            Ok((bytes, index)) => Ok(Some(self.cache.insert(
                key,
                CachedGraph::new_encoded_intra(bytes, loc.bit_len, index),
            ))),
            Err(e) => {
                self.quarantine(Quarantine::Intra(s), e)?;
                Ok(None)
            }
        }
    }

    /// `Ok(None)` means the graph is quarantined (degraded mode only).
    fn superedge(&self, s: u32, edge_idx: u32, j: u32) -> Result<Option<Arc<CachedGraph>>> {
        if let Some(d) = &self.degrade {
            if d.read().quarantined_super.contains(&(s, j)) {
                return Ok(None);
            }
        }
        let key = GraphKey::Super(s, j);
        if let Some(g) = self.cache.get(key) {
            return Ok(Some(g));
        }
        let loc = self.meta.superedge_loc[s as usize][edge_idx as usize];
        let blob_idx = self.blob_base[s as usize] + 1 + u64::from(edge_idx);
        let ni = u64::from(self.meta.supernode_size(s));
        let nj = u64::from(self.meta.supernode_size(j));
        let sw = wg_obs::telemetry_enabled().then(wg_obs::Stopwatch::start);
        let parsed = self.load_blob(&loc, blob_idx).and_then(|bytes| {
            let index =
                SuperedgeIndex::parse(&bytes, loc.bit_len, ni, nj, self.meta.codec.superedge)?;
            Ok((bytes, index))
        });
        if let Some(sw) = sw {
            wg_obs::stage_add(wg_obs::Stage::ListDecode, sw.elapsed_ns());
        }
        match parsed {
            Ok((bytes, index)) => Ok(Some(self.cache.insert(
                key,
                CachedGraph::new_encoded_super(bytes, loc.bit_len, index, nj),
            ))),
            Err(e) => {
                self.quarantine(Quarantine::Super(s, j), e)?;
                Ok(None)
            }
        }
    }
}

/// Fully memory-resident *encoded* S-Node representation (Table 2 setup).
#[derive(Debug)]
pub struct SNodeInMemory {
    meta: SNodeMeta,
    /// Per supernode: encoded intranode bytes + pre-parsed directory.
    intra: Vec<(Vec<u8>, u64, ListsIndex)>,
    /// Per supernode, per superedge (order of `supergraph.adj[s]`).
    supers: Vec<Vec<(Vec<u8>, u64, SuperedgeIndex)>>,
}

impl SNodeInMemory {
    /// Loads every encoded graph under `dir` into memory, verifying each
    /// blob against the integrity manifest when one is present (strict —
    /// the Table 2 setup has no quarantine path).
    pub fn load(dir: &Path) -> Result<Self> {
        let meta = SNodeMeta::read(dir)?;
        let files = IndexFileReader::open(dir)?;
        let manifest = IntegrityManifest::read(dir)?;
        let integrity = IntegrityCounters::new();
        let check = |bytes: &[u8], blob_idx: usize| -> Result<()> {
            let Some(m) = &manifest else {
                return Ok(());
            };
            integrity.check();
            let expected = m
                .blob_crc
                .get(blob_idx)
                .copied()
                .ok_or(SNodeError::Corrupt(
                    "resident manifest blob table truncated",
                ))?;
            if wg_fault::crc32c(bytes) != expected {
                integrity.failure();
                return Err(SNodeError::Corrupt("resident blob checksum mismatch"));
            }
            Ok(())
        };
        let n = meta.num_supernodes();
        let mut blob_idx = 0usize;
        let mut intra = Vec::with_capacity(n as usize);
        let mut supers = Vec::with_capacity(n as usize);
        for s in 0..n {
            let loc = meta.intranode_loc[s as usize];
            let bytes = files.read(&loc)?;
            check(&bytes, blob_idx)?;
            blob_idx += 1;
            let index =
                ListsIndex::parse(&bytes, loc.bit_len, Universe::SameAsCount, meta.codec.intra)?;
            intra.push((bytes, loc.bit_len, index));
            let mut row = Vec::with_capacity(meta.supergraph.adj[s as usize].len());
            let ni = u64::from(meta.supernode_size(s));
            for (k, loc) in meta.superedge_loc[s as usize].iter().enumerate() {
                let j = meta.supergraph.adj[s as usize][k];
                let nj = u64::from(meta.supernode_size(j));
                let bytes = files.read(loc)?;
                check(&bytes, blob_idx)?;
                blob_idx += 1;
                let index =
                    SuperedgeIndex::parse(&bytes, loc.bit_len, ni, nj, meta.codec.superedge)?;
                row.push((bytes, loc.bit_len, index));
            }
            supers.push(row);
        }
        Ok(Self {
            meta,
            intra,
            supers,
        })
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.meta.num_pages
    }

    /// Resident metadata.
    pub fn meta(&self) -> &SNodeMeta {
        &self.meta
    }

    /// Decodes the adjacency list of `p` straight from the in-memory
    /// encoded graphs (one list per contributing graph — this is the
    /// random-access path whose cost Table 2 reports).
    pub fn out_neighbors(&self, p: PageId) -> Result<Vec<PageId>> {
        let s = self.meta.supernode_of(p);
        let s_start = self.meta.page_range(s).start;
        let local = p - s_start;

        let mut parts: Vec<(u32, Vec<u32>)> = Vec::new();
        {
            let (bytes, bits, index) = &self.intra[s as usize];
            let list = index.decode_list(bytes, *bits, local)?;
            if !list.is_empty() {
                parts.push((s_start, list));
            }
        }
        for (k, &j) in self.meta.supergraph.adj[s as usize].iter().enumerate() {
            let (bytes, bits, index) = &self.supers[s as usize][k];
            let nj = u64::from(self.meta.supernode_size(j));
            let list = index.targets_of(bytes, *bits, u64::from(local), nj)?;
            if !list.is_empty() {
                parts.push((self.meta.page_range(j).start, list));
            }
        }
        parts.sort_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(parts.iter().map(|(_, l)| l.len()).sum());
        for (start, list) in parts {
            out.extend(list.into_iter().map(|t| start + t));
        }
        Ok(out)
    }

    /// Decodes the entire representation back into a CSR graph — the
    /// global-access path (§1.2): load the compressed graph into memory,
    /// expand, and run whole-graph algorithms (SCC, PageRank, HITS) as
    /// plain main-memory computations.
    pub fn to_graph(&self) -> Result<wg_graph::Graph> {
        let n = self.num_pages();
        let mut lists = Vec::with_capacity(n as usize);
        for p in 0..n {
            lists.push(self.out_neighbors(p)?);
        }
        Ok(wg_graph::Graph::from_adjacency(lists))
    }

    /// Bytes of encoded graph data held resident (excluding directories).
    pub fn encoded_bytes(&self) -> u64 {
        let i: u64 = self.intra.iter().map(|(b, _, _)| b.len() as u64).sum();
        let s: u64 = self
            .supers
            .iter()
            .flat_map(|row| row.iter().map(|(b, _, _)| b.len() as u64))
            .sum();
        i + s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_snode, RepoInput, SNodeConfig};
    use wg_graph::Graph;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_snode_repr_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    /// Builds a deterministic pseudo-random repository and its S-Node form.
    fn build_repo(
        name: &str,
        n: u32,
    ) -> (
        std::path::PathBuf,
        Graph,
        crate::disk::Renumbering,
        Vec<u32>,
    ) {
        let hosts = ["http://www.a.edu", "http://cs.a.edu", "http://www.b.com"];
        let urls: Vec<String> = (0..n)
            .map(|i| format!("{}/d{}/p{:04}.html", hosts[(i % 3) as usize], i % 5, i))
            .collect();
        let domains: Vec<u32> = (0..n).map(|i| if i % 3 == 2 { 1 } else { 0 }).collect();
        let mut edges = Vec::new();
        let mut s = 0xABCDEFu64;
        for u in 0..n {
            for _ in 0..6 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = ((s >> 33) % u64::from(n)) as u32;
                if v != u {
                    edges.push((u, v));
                }
            }
            // Local edge for structure.
            edges.push((u, (u + 3) % n));
        }
        let graph = Graph::from_edges(n, edges);
        let dir = temp_dir(name);
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let input = RepoInput {
            urls: &url_refs,
            domains: &domains,
            graph: &graph,
        };
        let (_stats, renum) = build_snode(input, &SNodeConfig::default(), &dir).unwrap();
        (dir, graph, renum, domains)
    }

    fn expected_neighbors(
        graph: &Graph,
        renum: &crate::disk::Renumbering,
        new_id: u32,
    ) -> Vec<u32> {
        let old = renum.old_of_new[new_id as usize];
        let mut v: Vec<u32> = graph
            .neighbors(old)
            .iter()
            .map(|&t| renum.new_of_old[t as usize])
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn disk_backed_adjacency_matches_source() {
        let (dir, graph, renum, _) = build_repo("disk", 120);
        let snode = SNode::open(&dir, 1 << 20).unwrap();
        for new_id in 0..graph.num_nodes() {
            assert_eq!(
                snode.out_neighbors(new_id).unwrap(),
                expected_neighbors(&graph, &renum, new_id),
                "page {new_id}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_adjacency_matches_source() {
        let (dir, graph, renum, _) = build_repo("mem", 120);
        let snode = SNodeInMemory::load(&dir).unwrap();
        for new_id in 0..graph.num_nodes() {
            assert_eq!(
                snode.out_neighbors(new_id).unwrap(),
                expected_neighbors(&graph, &renum, new_id),
                "page {new_id}"
            );
        }
        assert!(snode.encoded_bytes() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_cache_still_answers_correctly() {
        let (dir, graph, renum, _) = build_repo("tinycache", 90);
        // A cache of ~1KB forces constant load/unload churn.
        let snode = SNode::open(&dir, 1024).unwrap();
        for new_id in (0..graph.num_nodes()).rev() {
            assert_eq!(
                snode.out_neighbors(new_id).unwrap(),
                expected_neighbors(&graph, &renum, new_id)
            );
        }
        assert!(snode.cache_stats().evictions > 0, "1KB budget must evict");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hits_on_locality() {
        let (dir, graph, _renum, _) = build_repo("local", 100);
        let snode = SNode::open(&dir, 8 << 20).unwrap();
        // Two passes over the same supernode's pages: second pass all hits.
        let r = snode.page_range(0);
        for p in r.clone() {
            snode.out_neighbors(p).unwrap();
        }
        let after_first = snode.cache_stats();
        for p in r {
            snode.out_neighbors(p).unwrap();
        }
        let after_second = snode.cache_stats();
        assert_eq!(
            after_first.misses, after_second.misses,
            "second pass must not miss"
        );
        assert!(after_second.hits > after_first.hits);
        let _ = graph;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_open_answers_and_counts_identically() {
        let (dir, graph, renum, _) = build_repo("resident", 120);
        let plain = SNode::open(&dir, 1 << 20).unwrap();
        let resident = SNode::open_resident(&dir, 1 << 20).unwrap();
        assert!(!plain.is_resident());
        assert!(resident.is_resident());
        assert!(resident.resident_bytes() > 0);
        assert_eq!(plain.resident_bytes(), 0);
        for new_id in 0..graph.num_nodes() {
            assert_eq!(
                resident.out_neighbors(new_id).unwrap(),
                expected_neighbors(&graph, &renum, new_id),
                "page {new_id}"
            );
            plain.out_neighbors(new_id).unwrap();
        }
        // Same physical-read and cache accounting on both paths.
        assert_eq!(plain.disk_reads(), resident.disk_reads());
        assert_eq!(plain.cache_stats(), resident.cache_stats());
        // Checksums still verify on the zero-copy path.
        let (checks, failures) = resident.integrity_stats();
        assert!(checks > 0);
        assert_eq!(failures, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_open_surfaces_corruption() {
        let (dir, graph, _renum, _) = build_repo("residentcrc", 80);
        flip_first_index_byte(&dir);
        let snode = SNode::open_resident(&dir, 1 << 20).unwrap();
        let err = (0..graph.num_nodes()).find_map(|p| snode.out_neighbors(p).err());
        assert!(err.is_some(), "resident mode is strict about corruption");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn domain_index_resolves_pages() {
        let (dir, _graph, renum, domains) = build_repo("domains", 80);
        let snode = SNode::open(&dir, 1 << 20).unwrap();
        for d in 0..2u32 {
            let got = snode.pages_in_domain(d);
            let mut expect: Vec<u32> = (0..80u32)
                .filter(|&old| domains[old as usize] == d)
                .map(|old| renum.new_of_old[old as usize])
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "domain {d}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn flip_first_index_byte(dir: &std::path::Path) {
        let path = crate::disk::index_file_path(dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
    }

    #[test]
    fn clean_directory_verifies_with_zero_failures() {
        let (dir, graph, renum, _) = build_repo("cleancrc", 80);
        let snode = SNode::open_degraded(&dir, 1 << 20).unwrap();
        assert!(snode.verifies_checksums());
        for p in 0..graph.num_nodes() {
            assert_eq!(
                snode.out_neighbors(p).unwrap(),
                expected_neighbors(&graph, &renum, p)
            );
        }
        assert!(snode.degraded().is_clean());
        let (checks, failures) = snode.integrity_stats();
        assert!(checks > 0, "manifest present, blobs must be verified");
        assert_eq!(failures, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_open_surfaces_a_single_bit_flip() {
        let (dir, graph, _renum, _) = build_repo("strictcrc", 80);
        flip_first_index_byte(&dir);
        let snode = SNode::open(&dir, 1 << 20).unwrap();
        let err = (0..graph.num_nodes()).find_map(|p| snode.out_neighbors(p).err());
        assert!(err.is_some(), "strict mode must surface the flip");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degraded_open_quarantines_and_answers_partially() {
        let (dir, graph, renum, _) = build_repo("degrade", 80);
        flip_first_index_byte(&dir);
        let snode = SNode::open_degraded(&dir, 1 << 20).unwrap();
        for p in 0..graph.num_nodes() {
            let got = snode.out_neighbors(p).unwrap();
            let expect = expected_neighbors(&graph, &renum, p);
            // Partial answers only ever omit edges, never invent them.
            assert!(got.iter().all(|t| expect.contains(t)), "page {p}");
        }
        let report = snode.degraded();
        assert!(report.quarantined_supernodes >= 1);
        assert!(report.skipped_edges >= 1);
        let (_, failures) = snode.integrity_stats();
        assert!(failures >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_load_verifies_blobs() {
        let (dir, _graph, _renum, _) = build_repo("memcrc", 60);
        flip_first_index_byte(&dir);
        assert!(SNodeInMemory::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifestless_directory_stays_readable() {
        let (dir, graph, renum, _) = build_repo("v1compat", 60);
        std::fs::remove_file(dir.join(crate::integrity::SUMS_FILE)).unwrap();
        let snode = SNode::open(&dir, 1 << 20).unwrap();
        assert!(!snode.verifies_checksums());
        for p in 0..graph.num_nodes() {
            assert_eq!(
                snode.out_neighbors(p).unwrap(),
                expected_neighbors(&graph, &renum, p)
            );
        }
        assert_eq!(snode.integrity_stats(), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_log_shows_loaded_graph_counts() {
        let (dir, _graph, _renum, _) = build_repo("log", 100);
        let snode = SNode::open(&dir, 8 << 20).unwrap();
        snode.enable_cache_log();
        // One page's adjacency touches its intranode graph and its
        // supernode's out-superedge graphs, nothing else.
        snode.out_neighbors(0).unwrap();
        let log = snode.take_cache_log();
        let s = snode.supernode_of(0);
        let expected_loads = 1 + snode.meta().supergraph.adj[s as usize].len();
        assert_eq!(log.len(), expected_loads, "only relevant graphs load");
        std::fs::remove_dir_all(&dir).ok();
    }
}
