//! Iterative partition refinement (§3.2 of the paper).
//!
//! The partition starts as the **domain partition** `P0` (all pages of
//! `stanford.edu` together, keyed by the top two DNS levels), then is
//! refined one element at a time:
//!
//! * an element still inside its URL budget is split by **URL split** —
//!   grouping by a URL prefix one level deeper than the prefix that
//!   produced it, from hostname down to three directory levels;
//! * past that depth, by **clustered split** — k-means over the pages'
//!   supernode-adjacency bit vectors, starting with `k` equal to the
//!   element's supernode out-degree, `k += 2` after every non-converged
//!   (aborted) run, giving up after a fixed number of attempts.
//!
//! The element to refine is chosen uniformly at random (the paper found
//! "largest first" and "random" indistinguishable and adopted random).
//! Refinement stops after `abort_max` consecutive clustered-split aborts,
//! with `abort_max` a fixed fraction (default 6 %) of the current number of
//! elements — exactly the paper's stopping criterion.
//!
//! One implementation note: the paper maintains the supernode graph
//! incrementally across iterations; we recompute the (element-local) slice
//! of it that clustered split needs on demand from `elem_of`. The results
//! are identical; only the bookkeeping differs.

use crate::kmeans::{kmeans_binary, KMeansOutcome, KMeansParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use wg_graph::{Graph, PageId};

/// Deepest URL-prefix level used by URL split (hostname = 0, then three
/// directory levels), per the paper's manual-inspection finding.
pub const MAX_URL_DEPTH: u32 = 3;

/// How an element may be split next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitState {
    /// Next split groups by URL prefix at this depth (0 = hostname).
    Url {
        /// Prefix depth for the next URL split.
        depth: u32,
    },
    /// URL prefixes are exhausted; only clustered split applies.
    Clustered,
}

/// One element of the partition.
#[derive(Debug, Clone)]
pub struct Element {
    /// Pages in this element (ascending page id).
    pub pages: Vec<PageId>,
    /// The domain every page of this element belongs to (Property 2).
    pub domain: u32,
    /// Split technique to apply next.
    pub state: SplitState,
    /// Set once clustered split aborted on this element: future picks
    /// abort immediately instead of re-running k-means. A pure
    /// cost optimisation over the paper's loop (it re-ran k-means on every
    /// pick); it can only make re-splittable-after-neighbour-changes
    /// elements stay whole, never split anything the paper would not.
    pub sterile: bool,
}

/// A partition of the repository's pages.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Partition elements. Indices are stable across refinement.
    pub elements: Vec<Element>,
    /// `elem_of[p]` = element index of page `p`.
    pub elem_of: Vec<u32>,
}

impl Partition {
    /// The initial partition `P0`: one element per domain.
    pub fn initial(domains: &[u32]) -> Self {
        let mut by_domain: HashMap<u32, Vec<PageId>> = HashMap::new();
        for (p, &d) in domains.iter().enumerate() {
            by_domain.entry(d).or_default().push(p as PageId);
        }
        let mut keys: Vec<u32> = by_domain.keys().copied().collect();
        keys.sort_unstable();
        let mut elements = Vec::with_capacity(keys.len());
        let mut elem_of = vec![0u32; domains.len()];
        for d in keys {
            let pages = by_domain.remove(&d).expect("key exists");
            let idx = elements.len() as u32;
            for &p in &pages {
                elem_of[p as usize] = idx;
            }
            elements.push(Element {
                pages,
                domain: d,
                state: SplitState::Url { depth: 0 },
                sterile: false,
            });
        }
        Self { elements, elem_of }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the partition is empty (no pages at all).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Checks the partition invariant: every page in exactly one element,
    /// `elem_of` consistent. Used by tests and debug assertions.
    pub fn validate(&self, num_pages: u32) -> bool {
        let mut seen = vec![false; num_pages as usize];
        for (i, e) in self.elements.iter().enumerate() {
            if e.pages.is_empty() {
                return false;
            }
            for &p in &e.pages {
                if p >= num_pages || seen[p as usize] || self.elem_of[p as usize] != i as u32 {
                    return false;
                }
                seen[p as usize] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Replaces element `idx` with `groups` (each non-empty, each carrying
    /// its own split state). The first group keeps index `idx`; the rest
    /// get fresh indices.
    fn apply_split(&mut self, idx: u32, groups: Vec<(Vec<PageId>, SplitState)>) {
        debug_assert!(groups.len() >= 2);
        debug_assert!(groups.iter().all(|(g, _)| !g.is_empty()));
        let domain = self.elements[idx as usize].domain;
        let mut iter = groups.into_iter();
        let (first, first_state) = iter.next().expect("at least two groups");
        for &p in &first {
            self.elem_of[p as usize] = idx;
        }
        self.elements[idx as usize] = Element {
            pages: first,
            domain,
            state: first_state,
            sterile: false,
        };
        for (group, state) in iter {
            let new_idx = self.elements.len() as u32;
            for &p in &group {
                self.elem_of[p as usize] = new_idx;
            }
            self.elements.push(Element {
                pages: group,
                domain,
                state,
                sterile: false,
            });
        }
    }
}

/// Which element the refinement loop picks each iteration.
///
/// The paper tried "always split the largest" and "pick at random" and
/// measured them indistinguishable (§3.2), then used random. At the
/// reduced scales this harness runs, random picking interacts badly with
/// the consecutive-abort stopping criterion: with few hundred elements of
/// which only a handful are splittable, a short unlucky streak (6 % of a
/// small partition is a small number) stops refinement before the large
/// splittable elements are ever touched. Largest-first is deterministic,
/// runs to true exhaustion, and by the paper's own measurement produces
/// the same partitions — so it is the default here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PickPolicy {
    /// Deterministically refine the largest refinable element each round.
    #[default]
    LargestFirst,
    /// The paper's final policy: uniform random element each round.
    Random,
}

/// Configuration of the refinement loop.
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// RNG seed (element choice, k-means init).
    pub seed: u64,
    /// Element-choice policy.
    pub pick: PickPolicy,
    /// `abort_max` as a fraction of the current element count (paper: 6 %).
    pub abort_fraction: f64,
    /// Iteration bound per k-means run (the paper's execution-time bound).
    pub kmeans_max_iterations: u32,
    /// Operation budget per k-means run — the deterministic stand-in for
    /// the paper's wall-clock bound on clustered split. Large elements
    /// with large supernode out-degrees blow this budget and abort, which
    /// is the mechanism that keeps the final partition's elements at
    /// realistic sizes instead of shattering to singletons.
    pub kmeans_ops_budget: u64,
    /// k-means attempts (`k`, `k+2`, …) before clustered split aborts.
    pub kmeans_attempts: u32,
    /// Elements smaller than this are never split further.
    pub min_element_size: u32,
    /// A URL split is applied only if the mean size of the groups it
    /// produces is at least this; otherwise the element keeps its current
    /// granularity and moves on to clustered split. Same Requirement-1
    /// rationale as `min_mean_cluster_size`: the partition must "produce
    /// intranode and superedge graphs that are highly compressible", and
    /// groups of a handful of pages trade away all reference-encoding
    /// opportunity for per-graph overhead. The default of 32 matches the
    /// granularity the paper's partition ends at (Fig 9a: several hundred
    /// pages per supernode on crawls whose hosts are ~1000× larger than
    /// this harness's synthetic ones).
    pub min_url_split_mean: u32,
    /// A converged clustered split is accepted only if the mean size of
    /// its non-empty clusters is at least this. Requirement 1 (§3) wants
    /// partitions whose elements compress well under reference encoding;
    /// a split whose clusters are near-singletons destroys every
    /// reference-encoding candidate while multiplying per-graph overhead,
    /// so it is treated as "no usable cluster structure" (the element is
    /// cohesive) rather than applied.
    pub min_mean_cluster_size: u32,
    /// Hard cap on refinement iterations (safety valve; effectively
    /// unreachable for sane inputs).
    pub max_iterations: u64,
    /// Worker threads for the k-means distance/assignment loops (1 =
    /// serial; [`crate::build::build_snode`] overrides this with the
    /// build-level thread count). Refinement *decisions* are unaffected:
    /// the parallel loops are deterministic and the RNG is consumed only
    /// on the serial path (element picks, Forgy initialisation).
    pub threads: u32,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            pick: PickPolicy::LargestFirst,
            abort_fraction: 0.06,
            kmeans_max_iterations: 30,
            kmeans_ops_budget: 400_000,
            kmeans_attempts: 3,
            min_element_size: 2,
            min_url_split_mean: 128,
            min_mean_cluster_size: 16,
            max_iterations: 10_000_000,
            threads: 1,
        }
    }
}

/// Statistics of a refinement run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Iterations executed.
    pub iterations: u64,
    /// Successful URL splits.
    pub url_splits: u64,
    /// Successful clustered splits.
    pub clustered_splits: u64,
    /// Clustered-split aborts.
    pub clustered_aborts: u64,
}

/// Runs iterative refinement to completion and returns the final partition.
///
/// `urls[p]` must be the full URL of page `p`; `domains[p]` its domain id;
/// `graph` the Web graph.
pub fn refine(
    urls: &[&str],
    domains: &[u32],
    graph: &Graph,
    config: &RefineConfig,
) -> (Partition, RefineStats) {
    assert_eq!(urls.len(), domains.len());
    assert_eq!(urls.len(), graph.num_nodes() as usize);
    let mut partition = Partition::initial(domains);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut stats = RefineStats::default();

    if partition.is_empty() {
        return (partition, stats);
    }

    match config.pick {
        PickPolicy::LargestFirst => {
            refine_largest_first(&mut partition, urls, graph, config, &mut rng, &mut stats);
        }
        PickPolicy::Random => {
            refine_random(&mut partition, urls, graph, config, &mut rng, &mut stats);
        }
    }

    debug_assert!(partition.validate(graph.num_nodes()));
    (partition, stats)
}

/// One refinement attempt on element `idx`; returns whether it split.
fn refine_one(
    partition: &mut Partition,
    idx: u32,
    urls: &[&str],
    graph: &Graph,
    config: &RefineConfig,
    rng: &mut SmallRng,
    stats: &mut RefineStats,
) -> bool {
    // URL split while the element has prefix budget left.
    if let SplitState::Url { depth } = partition.elements[idx as usize].state {
        match try_url_split(partition, idx, depth, urls, config) {
            UrlSplitOutcome::Split => {
                stats.url_splits += 1;
                return true;
            }
            UrlSplitOutcome::Exhausted => {
                // Fall through to clustered split below.
            }
        }
    }
    if try_clustered_split(partition, idx, graph, config, rng) {
        stats.clustered_splits += 1;
        true
    } else {
        stats.clustered_aborts += 1;
        false
    }
}

/// Deterministic policy: a lazy max-heap of (size, element); every element
/// gets exactly one shot per size (children re-enter after splits; failed
/// elements turn sterile and never re-enter). Runs to true exhaustion.
fn refine_largest_first(
    partition: &mut Partition,
    urls: &[&str],
    graph: &Graph,
    config: &RefineConfig,
    rng: &mut SmallRng,
    stats: &mut RefineStats,
) {
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(usize, u32)> = (0..partition.len() as u32)
        .map(|i| (partition.elements[i as usize].pages.len(), i))
        .collect();
    while let Some((size, idx)) = heap.pop() {
        if stats.iterations >= config.max_iterations {
            break;
        }
        let e = &partition.elements[idx as usize];
        if e.sterile || e.pages.len() != size {
            continue; // stale heap entry
        }
        stats.iterations += 1;
        let before = partition.len() as u32;
        if refine_one(partition, idx, urls, graph, config, rng, stats) {
            // Re-enter the shrunken element and its new siblings.
            heap.push((partition.elements[idx as usize].pages.len(), idx));
            for i in before..partition.len() as u32 {
                heap.push((partition.elements[i as usize].pages.len(), i));
            }
        }
        // On failure the element is sterile (clustered split marks it) or
        // exhausted-and-sterile; either way it does not re-enter.
    }
}

/// The paper's random policy with its consecutive-abort stopping criterion.
fn refine_random(
    partition: &mut Partition,
    urls: &[&str],
    graph: &Graph,
    config: &RefineConfig,
    rng: &mut SmallRng,
    stats: &mut RefineStats,
) {
    let mut consecutive_aborts = 0u64;
    while stats.iterations < config.max_iterations {
        let abort_max = ((partition.len() as f64 * config.abort_fraction).ceil() as u64).max(2);
        if consecutive_aborts >= abort_max {
            break;
        }
        stats.iterations += 1;
        let idx = rng.gen_range(0..partition.len()) as u32;
        if refine_one(partition, idx, urls, graph, config, rng, stats) {
            consecutive_aborts = 0;
        } else {
            consecutive_aborts += 1;
        }
    }
}

enum UrlSplitOutcome {
    /// The element was split into ≥ 2 groups.
    Split,
    /// No prefix up to [`MAX_URL_DEPTH`] discriminates; the element is now
    /// marked [`SplitState::Clustered`].
    Exhausted,
}

/// Attempts URL split at `depth`, deepening past non-discriminating levels
/// (single-group results) until a split happens or the budget runs out.
fn try_url_split(
    partition: &mut Partition,
    idx: u32,
    start_depth: u32,
    urls: &[&str],
    config: &RefineConfig,
) -> UrlSplitOutcome {
    let element = &partition.elements[idx as usize];
    if (element.pages.len() as u32) < config.min_element_size.max(2) {
        partition.elements[idx as usize].state = SplitState::Clustered;
        return UrlSplitOutcome::Exhausted;
    }
    let mut depth = start_depth;
    loop {
        let mut groups: HashMap<&str, Vec<PageId>> = HashMap::new();
        for &p in &partition.elements[idx as usize].pages {
            groups
                .entry(url_prefix(urls[p as usize], depth))
                .or_default()
                .push(p);
        }
        if groups.len() >= 2 {
            // Granularity gate (Requirement 1): prefix groups below the
            // minimum size would spend more on per-graph overhead than
            // reference encoding saves, so they pool into one residual
            // element (still same-domain, same-host-prefix pages) while
            // every sufficiently large group becomes its own element.
            let gate = config.min_url_split_mean.max(1) as usize;
            let mut keyed: Vec<(&str, Vec<PageId>)> = groups.into_iter().collect();
            keyed.sort_by(|a, b| a.0.cmp(b.0));
            let next_state = if depth + 1 > MAX_URL_DEPTH {
                SplitState::Clustered
            } else {
                SplitState::Url { depth: depth + 1 }
            };
            let mut children: Vec<(Vec<PageId>, SplitState)> = Vec::new();
            let mut residual: Vec<PageId> = Vec::new();
            for (_, g) in keyed {
                if g.len() >= gate {
                    children.push((g, next_state));
                } else {
                    residual.extend(g);
                }
            }
            if !residual.is_empty() {
                residual.sort_unstable();
                // Mixed prefixes: URL split would regroup it identically,
                // so only clustered split may refine it further.
                children.push((residual, SplitState::Clustered));
            }
            if children.len() >= 2 {
                partition.apply_split(idx, children);
                return UrlSplitOutcome::Split;
            }
            // Everything pooled into one group: no usable URL structure at
            // this depth or below.
            partition.elements[idx as usize].state = SplitState::Clustered;
            return UrlSplitOutcome::Exhausted;
        }
        if depth >= MAX_URL_DEPTH {
            partition.elements[idx as usize].state = SplitState::Clustered;
            return UrlSplitOutcome::Exhausted;
        }
        depth += 1;
        partition.elements[idx as usize].state = SplitState::Url { depth };
    }
}

/// Attempts clustered split; returns whether the element was split.
fn try_clustered_split(
    partition: &mut Partition,
    idx: u32,
    graph: &Graph,
    config: &RefineConfig,
    rng: &mut SmallRng,
) -> bool {
    let element = &partition.elements[idx as usize];
    let m = element.pages.len();
    if element.sterile || (m as u32) < config.min_element_size.max(2) {
        return false;
    }

    // Supernode-adjacency bit vectors: dimensions are the *other* elements
    // this element points to (the supernode's out-neighbours, Figure 6).
    let mut dim_of: HashMap<u32, u32> = HashMap::new();
    let mut vectors: Vec<Vec<u32>> = Vec::with_capacity(m);
    for &p in &element.pages {
        let mut dims: Vec<u32> = graph
            .neighbors(p)
            .iter()
            .map(|&t| partition.elem_of[t as usize])
            .filter(|&e| e != idx)
            .map(|e| {
                let next = dim_of.len() as u32;
                *dim_of.entry(e).or_insert(next)
            })
            .collect();
        dims.sort_unstable();
        dims.dedup();
        vectors.push(dims);
    }
    let dims = dim_of.len() as u32;
    if dims == 0 {
        return false; // nothing to discriminate on
    }

    // k starts at the supernode out-degree; k += 2 per aborted attempt.
    let mut k = dims;
    for _attempt in 0..config.kmeans_attempts.max(1) {
        let outcome = kmeans_binary(
            &vectors,
            dims,
            KMeansParams {
                k,
                max_iterations: config.kmeans_max_iterations,
                max_ops: config.kmeans_ops_budget / u64::from(config.kmeans_attempts.max(1)),
                threads: config.threads,
            },
            rng,
        );
        match outcome {
            KMeansOutcome::Converged {
                assignment,
                non_empty,
            } if non_empty >= 2 => {
                // A usable split must leave clusters big enough to keep
                // reference encoding effective (Requirement 1): shattered
                // output means the element has no real cluster structure.
                if (m as u32) < non_empty * config.min_mean_cluster_size.max(1) {
                    partition.elements[idx as usize].sterile = true;
                    return false;
                }
                // Split into non-empty clusters.
                let kk = (k as usize).clamp(1, m);
                let mut groups: Vec<Vec<PageId>> = vec![Vec::new(); kk];
                let pages = partition.elements[idx as usize].pages.clone();
                for (i, &p) in pages.iter().enumerate() {
                    groups[assignment[i] as usize].push(p);
                }
                groups.retain(|g| !g.is_empty());
                let children = groups
                    .into_iter()
                    .map(|g| (g, SplitState::Clustered))
                    .collect();
                partition.apply_split(idx, children);
                return true;
            }
            KMeansOutcome::Converged { .. } => {
                // Converged to a single cluster: the element is cohesive;
                // a larger k will not help (same fixed point dominates).
                partition.elements[idx as usize].sterile = true;
                return false;
            }
            KMeansOutcome::Aborted => {
                k += 2;
            }
        }
    }
    partition.elements[idx as usize].sterile = true;
    false
}

/// The URL prefix at `depth`: the hostname for depth 0, plus the first
/// `depth` directory segments otherwise. The trailing filename never
/// participates.
#[allow(clippy::needless_range_loop)] // byte positions drive slicing logic
pub fn url_prefix(url: &str, depth: u32) -> &str {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let base = "http://".len().min(url.len());
    // End of hostname.
    let host_end = rest.find('/').map_or(url.len(), |i| base + i);
    if depth == 0 {
        return &url[..host_end];
    }
    // Walk `depth` directory segments past the hostname. The final path
    // segment is the filename and is excluded, so only segments followed by
    // a further '/' count.
    let path = &url[host_end..];
    let mut end = host_end;
    let mut seen = 0u32;
    let bytes = path.as_bytes();
    let mut seg_start = 1usize; // skip leading '/'
    if bytes.is_empty() {
        return &url[..host_end];
    }
    for i in 1..bytes.len() {
        if bytes[i] == b'/' {
            // Segment [seg_start, i) is a directory.
            seen += 1;
            end = host_end + i;
            seg_start = i + 1;
            if seen == depth {
                break;
            }
        }
    }
    let _ = seg_start;
    if seen == 0 {
        &url[..host_end]
    } else {
        &url[..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls_and_domains() -> (Vec<&'static str>, Vec<u32>) {
        let urls = vec![
            "http://www.alpha.edu/a/x/p0.html", // 0
            "http://www.alpha.edu/a/y/p1.html", // 1
            "http://www.alpha.edu/b/p2.html",   // 2
            "http://cs.alpha.edu/p3.html",      // 3
            "http://www.beta.com/p4.html",      // 4
            "http://www.beta.com/q/p5.html",    // 5
        ];
        let domains = vec![0, 0, 0, 0, 1, 1];
        (urls, domains)
    }

    #[test]
    fn url_prefix_levels() {
        let u = "http://www.alpha.edu/a/x/p0.html";
        assert_eq!(url_prefix(u, 0), "http://www.alpha.edu");
        assert_eq!(url_prefix(u, 1), "http://www.alpha.edu/a");
        assert_eq!(url_prefix(u, 2), "http://www.alpha.edu/a/x");
        // Depth beyond the available directories saturates.
        assert_eq!(url_prefix(u, 3), "http://www.alpha.edu/a/x");
        let root = "http://www.alpha.edu/p.html";
        assert_eq!(url_prefix(root, 0), "http://www.alpha.edu");
        assert_eq!(url_prefix(root, 2), "http://www.alpha.edu");
    }

    #[test]
    fn initial_partition_groups_by_domain() {
        let (_, domains) = urls_and_domains();
        let p = Partition::initial(&domains);
        assert_eq!(p.len(), 2);
        assert!(p.validate(6));
        assert_eq!(p.elements[0].pages, vec![0, 1, 2, 3]);
        assert_eq!(p.elements[1].pages, vec![4, 5]);
        assert_eq!(p.elements[0].domain, 0);
    }

    #[test]
    fn url_split_separates_hosts_then_directories() {
        let (urls, domains) = urls_and_domains();
        let mut p = Partition::initial(&domains);
        // Tiny fixture: disable the granularity gate so prefix mechanics
        // are observable.
        let cfg = RefineConfig {
            min_url_split_mean: 1,
            ..Default::default()
        };
        // Element 0 (alpha.edu): host split → www vs cs.
        match try_url_split(&mut p, 0, 0, &urls, &cfg) {
            UrlSplitOutcome::Split => {}
            _ => panic!("host-level split must succeed"),
        }
        assert!(p.validate(6));
        assert_eq!(p.len(), 3);
        // The www.alpha.edu element can split again at directory level.
        let www_idx = p.elem_of[0];
        let depth = match p.elements[www_idx as usize].state {
            SplitState::Url { depth } => depth,
            _ => panic!("www element should still be URL-splittable"),
        };
        assert_eq!(depth, 1);
        match try_url_split(&mut p, www_idx, depth, &urls, &cfg) {
            UrlSplitOutcome::Split => {}
            _ => panic!("directory-level split must succeed"),
        }
        assert!(p.validate(6));
        // /a pages together, /b page separate.
        assert_eq!(p.elem_of[0], p.elem_of[1]);
        assert_ne!(p.elem_of[0], p.elem_of[2]);
    }

    #[test]
    fn url_split_exhausts_to_clustered() {
        // All pages share every prefix level → exhausted.
        let urls = vec![
            "http://h.x.com/a/b/c/p0.html",
            "http://h.x.com/a/b/c/p1.html",
        ];
        let domains = vec![0, 0];
        let mut p = Partition::initial(&domains);
        let cfg = RefineConfig::default();
        match try_url_split(&mut p, 0, 0, &urls, &cfg) {
            UrlSplitOutcome::Exhausted => {}
            _ => panic!("identical prefixes cannot split"),
        }
        assert_eq!(p.elements[0].state, SplitState::Clustered);
    }

    #[test]
    fn clustered_split_separates_by_target_supernode() {
        // Element 0 = {0..8}; element 1 = {8}; element 2 = {9}.
        // Pages 0-3 point into element 1; pages 4-7 into element 2.
        let domains = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 2];
        let graph = Graph::from_edges(
            10,
            [
                (0, 8),
                (1, 8),
                (2, 8),
                (3, 8),
                (4, 9),
                (5, 9),
                (6, 9),
                (7, 9),
            ],
        );
        let mut p = Partition::initial(&domains);
        let cfg = RefineConfig {
            min_mean_cluster_size: 2,
            ..Default::default()
        };
        // Forgy init can collapse when both seeds land in one group; retry
        // over seeds like the refinement loop's repeated picks would.
        let split = (0..16u64).any(|seed| {
            let mut q = p.clone();
            let mut rng = SmallRng::seed_from_u64(seed);
            try_clustered_split(&mut q, 0, &graph, &cfg, &mut rng) && {
                p = q;
                true
            }
        });
        assert!(split, "no seed produced a clustered split");
        assert!(p.validate(10));
        assert_eq!(p.elem_of[0], p.elem_of[3]);
        assert_eq!(p.elem_of[4], p.elem_of[7]);
        assert_ne!(p.elem_of[0], p.elem_of[4]);
    }

    #[test]
    fn clustered_split_aborts_without_external_links() {
        let urls: Vec<String> = (0..3)
            .map(|i| format!("http://h.x.com/p{i}.html"))
            .collect();
        let _ = urls;
        let domains = vec![0, 0, 0];
        // Only internal links.
        let graph = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut p = Partition::initial(&domains);
        let cfg = RefineConfig::default();
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(!try_clustered_split(&mut p, 0, &graph, &cfg, &mut rng));
    }

    #[test]
    fn refine_end_to_end_small() {
        let (urls, domains) = urls_and_domains();
        let graph = Graph::from_edges(
            6,
            [
                (0, 1),
                (1, 0),
                (2, 4),
                (3, 5),
                (0, 4),
                (1, 4),
                (4, 5),
                (5, 0),
            ],
        );
        let cfg = RefineConfig {
            seed: 7,
            ..Default::default()
        };
        let (p, stats) = refine(&urls, &domains, &graph, &cfg);
        assert!(p.validate(6));
        assert!(stats.iterations > 0);
        assert!(p.len() >= 2, "domains never merge");
        // Property 2: every element is domain-pure.
        for e in &p.elements {
            assert!(e.pages.iter().all(|&pg| domains[pg as usize] == e.domain));
        }
    }

    #[test]
    fn refine_is_deterministic() {
        let (urls, domains) = urls_and_domains();
        let graph = Graph::from_edges(6, [(0, 4), (1, 4), (2, 5), (3, 5), (4, 0)]);
        let cfg = RefineConfig {
            seed: 42,
            ..Default::default()
        };
        let (p1, s1) = refine(&urls, &domains, &graph, &cfg);
        let (p2, s2) = refine(&urls, &domains, &graph, &cfg);
        assert_eq!(s1, s2);
        assert_eq!(p1.elem_of, p2.elem_of);
    }

    #[test]
    fn refine_handles_empty_input() {
        let (p, stats) = refine(
            &[],
            &[],
            &Graph::from_edges(0, []),
            &RefineConfig::default(),
        );
        assert!(p.is_empty());
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn singleton_elements_never_split() {
        let urls = vec!["http://a.x.com/p.html"];
        let domains = vec![0];
        let graph = Graph::from_edges(1, []);
        let (p, _) = refine(&urls, &domains, &graph, &RefineConfig::default());
        assert_eq!(p.len(), 1);
        assert!(p.validate(1));
    }
}
