//! Whole-representation integrity verification.
//!
//! A production repository wants a way to check an S-Node representation
//! after transfers or suspected corruption. [`verify`] walks every stored
//! graph, decodes it completely, and checks the structural invariants the
//! format promises:
//!
//! * the PageID index tiles `0..num_pages` with monotone ranges;
//! * every intranode graph has exactly `|Ni|` lists with targets `< |Ni|`;
//! * every superedge graph decodes for all `|Ni|` sources with targets
//!   `< |Nj|`, and carries at least one edge (superedges exist only where
//!   a link exists — §2's superedge rule);
//! * the domain index covers every supernode exactly once;
//! * edge totals add up.
//!
//! [`verify`] is fail-fast: it stops at the first violation. The
//! `wg-analyze` crate supersedes it for diagnostics — its `check` walks
//! the same structures but collects *every* finding with a stable code;
//! this function remains for callers that only need a pass/fail answer.

use crate::disk::{IndexFileReader, SNodeMeta};
use crate::refenc::{ListsIndex, Universe};
use crate::subgraphs::SuperedgeIndex;
use crate::{Result, SNodeError};
use std::path::Path;

/// Summary of a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Pages covered by the PageID index.
    pub num_pages: u32,
    /// Supernodes checked.
    pub num_supernodes: u32,
    /// Superedge graphs decoded.
    pub num_superedges: u64,
    /// Intranode edges found.
    pub intranode_edges: u64,
    /// Superedge (cross-element) edges found.
    pub superedge_edges: u64,
}

impl VerifyReport {
    /// Total edges represented.
    pub fn total_edges(&self) -> u64 {
        self.intranode_edges + self.superedge_edges
    }
}

/// Fully verifies the representation under `dir`.
pub fn verify(dir: &Path) -> Result<VerifyReport> {
    let meta = SNodeMeta::read(dir)?;
    let files = IndexFileReader::open(dir)?;
    let n = meta.num_supernodes();

    // Domain index must cover each supernode exactly once.
    let mut seen = vec![false; n as usize];
    for list in &meta.domain_supernodes {
        for &s in list {
            if s >= n {
                return Err(SNodeError::Corrupt("domain index names unknown supernode"));
            }
            if seen[s as usize] {
                return Err(SNodeError::Corrupt(
                    "supernode appears in two domains' index entries",
                ));
            }
            seen[s as usize] = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err(SNodeError::Corrupt("domain index misses a supernode"));
    }

    let mut intranode_edges = 0u64;
    let mut superedge_edges = 0u64;
    let mut num_superedges = 0u64;

    for s in 0..n {
        let ni = u64::from(meta.supernode_size(s));
        // Intranode graph.
        let loc = meta.intranode_loc[s as usize];
        let bytes = files.read(&loc)?;
        let (index, lists) =
            ListsIndex::load(&bytes, loc.bit_len, Universe::SameAsCount, meta.codec.intra)?;
        if u64::from(index.num_lists()) != ni {
            return Err(SNodeError::Corrupt(
                "intranode list count differs from supernode size",
            ));
        }
        for list in &lists {
            intranode_edges += list.len() as u64;
            if list.iter().any(|&t| u64::from(t) >= ni) {
                return Err(SNodeError::Corrupt("intranode target out of range"));
            }
        }

        // Superedge graphs.
        for (k, &j) in meta.supergraph.adj[s as usize].iter().enumerate() {
            if j >= n || j == s {
                return Err(SNodeError::Corrupt("superedge target invalid"));
            }
            num_superedges += 1;
            let nj = u64::from(meta.supernode_size(j));
            let loc = meta.superedge_loc[s as usize][k];
            let bytes = files.read(&loc)?;
            let index = SuperedgeIndex::parse(&bytes, loc.bit_len, ni, nj, meta.codec.superedge)?;
            let mut edges_here = 0u64;
            for src in 0..ni {
                let list = index.targets_of(&bytes, loc.bit_len, src, nj)?;
                edges_here += list.len() as u64;
                if list.iter().any(|&t| u64::from(t) >= nj) {
                    return Err(SNodeError::Corrupt("superedge target outside |Nj|"));
                }
            }
            if edges_here == 0 {
                return Err(SNodeError::Corrupt(
                    "superedge exists but represents no links",
                ));
            }
            superedge_edges += edges_here;
        }
    }

    Ok(VerifyReport {
        num_pages: meta.num_pages,
        num_supernodes: n,
        num_superedges,
        intranode_edges,
        superedge_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_snode, RepoInput, SNodeConfig};
    use wg_graph::Graph;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_verify_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn build_sample(name: &str) -> (std::path::PathBuf, Graph) {
        let n = 200u32;
        let urls: Vec<String> = (0..n)
            .map(|i| format!("http://h{}.d{}.org/p{:03}.html", i % 3, i % 4, i))
            .collect();
        let domains: Vec<u32> = (0..n).map(|i| i % 4).collect();
        let mut edges = Vec::new();
        let mut s = 5u64;
        for u in 0..n {
            for _ in 0..8 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = (s >> 33) as u32 % n;
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        let graph = Graph::from_edges(n, edges);
        let dir = temp_dir(name);
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let input = RepoInput {
            urls: &url_refs,
            domains: &domains,
            graph: &graph,
        };
        build_snode(input, &SNodeConfig::default(), &dir).unwrap();
        (dir, graph)
    }

    #[test]
    fn fresh_representation_verifies_with_exact_edge_count() {
        let (dir, graph) = build_sample("fresh");
        let report = verify(&dir).unwrap();
        assert_eq!(report.num_pages, graph.num_nodes());
        assert_eq!(report.total_edges(), graph.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_index_fails_verification() {
        let (dir, _) = build_sample("trunc");
        let idx = dir.join("index_000.bin");
        let bytes = std::fs::read(&idx).unwrap();
        std::fs::write(&idx, &bytes[..bytes.len() / 2]).unwrap();
        assert!(verify(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_meta_fails_verification_or_errors() {
        let (dir, _) = build_sample("flip");
        let meta = dir.join("meta.bin");
        let mut bytes = std::fs::read(&meta).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&meta, &bytes).unwrap();
        // Either the meta fails to parse or verification detects the damage
        // downstream; it must never report a clean bill of health with a
        // different edge count silently.
        match verify(&dir) {
            Err(_) => {}
            Ok(report) => {
                // If the flip landed in padding it can still verify — then
                // the totals must be consistent with themselves.
                assert_eq!(
                    report.total_edges(),
                    report.intranode_edges + report.superedge_edges
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
