//! Per-list-class codec selection.
//!
//! The S-Node paper fixes one list codec (γ-coded gaps, RLE copy-masks);
//! the WebGraph line of work showed the remaining bits/edge live in the
//! codec choices: ζ_k gap residuals, interval runs for consecutive-id
//! blocks, and copy blocks instead of copy bit-vectors. This module is
//! the configuration surface for those choices.
//!
//! A [`ListCodec`] describes how one *class* of adjacency lists is
//! coded; a [`CodecConfig`] holds one per class (intranode vs superedge).
//! The config is chosen at build time ([`crate::build::SNodeConfig`]),
//! recorded in the `meta.bin` header (format v2), and every decode path
//! reads it back from there — a directory always decodes with the codec
//! it was built with. Version-1 directories carry no codec field and
//! decode as [`CodecConfig::default`] (γ everywhere), which is
//! bit-compatible because ζ₁ *is* γ.
//!
//! Cells of the ablation grid are named `<gaps>[+iv][+cb][+st]` per
//! class: `g` (γ = ζ₁) or `z<k>` for the gap code, `+iv` for interval
//! runs, `+cb` for copy blocks, `+st` for the single-target dictionary
//! layout of superedge graphs — e.g. `z3+iv+cb` or `g+st`.

use crate::{Result, SNodeError};

/// Largest accepted ζ shrinking parameter. The useful range for Web-gap
/// distributions is 2..=5; 8 leaves headroom without letting a damaged
/// header smuggle in absurd values.
pub const MAX_ZETA_K: u8 = 8;

/// How one class of adjacency lists is coded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListCodec {
    /// ζ shrinking parameter for gap residuals, `1..=MAX_ZETA_K`.
    /// `1` is exactly the Elias γ code the seed format used.
    pub zeta_k: u8,
    /// Extract maximal runs of consecutive ids from plain lists and
    /// store them as (left extreme, length) pairs before gap-coding the
    /// residuals (BV interval runs).
    pub intervals: bool,
    /// Store reference-encoding copy-masks as BV copy blocks instead of
    /// the literal-or-RLE bit vector.
    pub copy_blocks: bool,
    /// Superedge graphs whose every non-empty source has exactly one
    /// target (site-template links dominate real crawls) may store a
    /// dictionary of distinct targets plus one minimal-binary index per
    /// source instead of per-source lists. Inert for intranode lists.
    pub singles: bool,
}

impl Default for ListCodec {
    fn default() -> Self {
        ListCodec {
            zeta_k: 1,
            intervals: false,
            copy_blocks: false,
            singles: false,
        }
    }
}

impl ListCodec {
    /// γ gaps, no intervals, no copy blocks, no singles dictionary — the
    /// seed (v1) format.
    pub const GAMMA: ListCodec = ListCodec {
        zeta_k: 1,
        intervals: false,
        copy_blocks: false,
        singles: false,
    };

    /// True when this codec produces bit-identical output to the seed
    /// (v1) γ format.
    pub fn is_gamma_baseline(&self) -> bool {
        *self == Self::GAMMA
    }

    /// Packs into one byte: low nibble ζ_k, bit 4 intervals, bit 5 copy
    /// blocks, bit 6 singles dictionary.
    fn to_byte(self) -> u8 {
        self.zeta_k
            | (u8::from(self.intervals) << 4)
            | (u8::from(self.copy_blocks) << 5)
            | (u8::from(self.singles) << 6)
    }

    /// Rejects out-of-range fields; used on every header read so a
    /// damaged codec byte surfaces as `Corrupt`, never a panic deeper in
    /// a ζ call (SN211).
    fn from_byte(b: u8) -> Result<ListCodec> {
        let zeta_k = b & 0x0F;
        if zeta_k == 0 || zeta_k > MAX_ZETA_K || b & !0x7F != 0 {
            return Err(SNodeError::Corrupt("invalid list codec id in header"));
        }
        Ok(ListCodec {
            zeta_k,
            intervals: b & 0x10 != 0,
            copy_blocks: b & 0x20 != 0,
            singles: b & 0x40 != 0,
        })
    }

    /// Parses a cell name like `g`, `z3`, `z3+iv+cb`, or `g+st`.
    pub fn parse_cell(s: &str) -> Result<ListCodec> {
        let mut parts = s.split('+');
        let gaps = parts.next().unwrap_or_default();
        let zeta_k = match gaps {
            "g" => 1u8,
            _ => gaps
                .strip_prefix('z')
                .and_then(|k| k.parse::<u8>().ok())
                .filter(|&k| (1..=MAX_ZETA_K).contains(&k))
                .ok_or(SNodeError::Corrupt(
                    "codec cell must start with 'g' or 'z<1..=8>'",
                ))?,
        };
        let mut codec = ListCodec {
            zeta_k,
            intervals: false,
            copy_blocks: false,
            singles: false,
        };
        for part in parts {
            match part {
                "iv" => codec.intervals = true,
                "cb" => codec.copy_blocks = true,
                "st" => codec.singles = true,
                _ => {
                    return Err(SNodeError::Corrupt(
                        "unknown codec cell flag (expected 'iv', 'cb', or 'st')",
                    ))
                }
            }
        }
        Ok(codec)
    }
}

impl std::fmt::Display for ListCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.zeta_k == 1 {
            write!(f, "g")?;
        } else {
            write!(f, "z{}", self.zeta_k)?;
        }
        if self.intervals {
            write!(f, "+iv")?;
        }
        if self.copy_blocks {
            write!(f, "+cb")?;
        }
        if self.singles {
            write!(f, "+st")?;
        }
        Ok(())
    }
}

/// The codec choice for each list class of an S-Node directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CodecConfig {
    /// Codec for intranode adjacency lists.
    pub intra: ListCodec,
    /// Codec for superedge (bipartite) adjacency lists and the positive
    /// form's source list.
    pub superedge: ListCodec,
}

impl CodecConfig {
    /// The seed (v1) format: γ everywhere.
    pub const GAMMA: CodecConfig = CodecConfig {
        intra: ListCodec::GAMMA,
        superedge: ListCodec::GAMMA,
    };

    /// True when every class uses the seed γ format — the default
    /// config, whose output is bit-identical to version-1 directories.
    pub fn is_gamma_baseline(&self) -> bool {
        self.intra.is_gamma_baseline() && self.superedge.is_gamma_baseline()
    }

    /// Header form: `[intra, superedge, 0, 0]` packed little-endian.
    /// The two reserved bytes must be zero (checked on read).
    pub fn to_header(self) -> u32 {
        u32::from(self.intra.to_byte()) | (u32::from(self.superedge.to_byte()) << 8)
    }

    /// Parses and validates the header form.
    pub fn from_header(v: u32) -> Result<CodecConfig> {
        if v >> 16 != 0 {
            return Err(SNodeError::Corrupt(
                "reserved codec header bytes are non-zero",
            ));
        }
        Ok(CodecConfig {
            intra: ListCodec::from_byte((v & 0xFF) as u8)?,
            superedge: ListCodec::from_byte(((v >> 8) & 0xFF) as u8)?,
        })
    }

    /// Parses `"<intra>/<superedge>"`, or one cell applied to both
    /// classes (e.g. `z3` ≡ `z3/z3`).
    pub fn parse(s: &str) -> Result<CodecConfig> {
        match s.split_once('/') {
            Some((i, e)) => Ok(CodecConfig {
                intra: ListCodec::parse_cell(i)?,
                superedge: ListCodec::parse_cell(e)?,
            }),
            None => {
                let c = ListCodec::parse_cell(s)?;
                Ok(CodecConfig {
                    intra: c,
                    superedge: c,
                })
            }
        }
    }
}

impl std::fmt::Display for CodecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.intra, self.superedge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_cells() -> Vec<ListCodec> {
        let mut v = Vec::new();
        for k in 1..=MAX_ZETA_K {
            for iv in [false, true] {
                for cb in [false, true] {
                    for st in [false, true] {
                        v.push(ListCodec {
                            zeta_k: k,
                            intervals: iv,
                            copy_blocks: cb,
                            singles: st,
                        });
                    }
                }
            }
        }
        v
    }

    #[test]
    fn header_round_trips_every_cell_pair() {
        for &a in &all_cells() {
            for &b in &all_cells() {
                let cfg = CodecConfig {
                    intra: a,
                    superedge: b,
                };
                let back = CodecConfig::from_header(cfg.to_header()).unwrap();
                assert_eq!(back, cfg);
            }
        }
    }

    #[test]
    fn invalid_headers_are_rejected() {
        for bad in [
            0u32,        // zeta_k = 0 in both classes
            0x0000_0009, // zeta_k = 9 > MAX_ZETA_K
            0x0000_0081, // reserved bit 7 set in intra byte
            0x0001_0101, // reserved high bytes non-zero
            0xFFFF_FFFF, //
            0x0000_0001, // superedge byte zero
            0x0000_0100, // intra byte zero
        ] {
            assert!(CodecConfig::from_header(bad).is_err(), "header {bad:#x}");
        }
    }

    #[test]
    fn cell_names_round_trip() {
        for &c in &all_cells() {
            let name = c.to_string();
            assert_eq!(ListCodec::parse_cell(&name).unwrap(), c, "{name}");
        }
        assert_eq!(ListCodec::parse_cell("g").unwrap(), ListCodec::GAMMA);
        assert_eq!(ListCodec::parse_cell("z1").unwrap(), ListCodec::GAMMA);
        assert!(ListCodec::parse_cell("z0").is_err());
        assert!(ListCodec::parse_cell("z9").is_err());
        assert!(ListCodec::parse_cell("g+xx").is_err());
        assert!(ListCodec::parse_cell("").is_err());
    }

    #[test]
    fn config_parse_single_and_pair() {
        let c = CodecConfig::parse("z3").unwrap();
        assert_eq!(c.intra.zeta_k, 3);
        assert_eq!(c.superedge.zeta_k, 3);
        let c = CodecConfig::parse("z3+iv/g").unwrap();
        assert!(c.intra.intervals);
        assert!(c.superedge.is_gamma_baseline());
        assert_eq!(c.to_string(), "z3+iv/g");
        assert_eq!(CodecConfig::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn default_is_the_gamma_baseline() {
        assert!(CodecConfig::default().is_gamma_baseline());
        assert_eq!(CodecConfig::default(), CodecConfig::GAMMA);
        assert_eq!(CodecConfig::GAMMA.to_string(), "g/g");
    }
}
