//! K-means clustering over supernode-adjacency bit vectors (§3.2).
//!
//! Clustered split associates with every page `p` of the element being
//! split a bit vector `adj(p)` whose dimensions are the supernodes the
//! element points to; bit `d` is set iff `p` links to some page of
//! supernode `d`. Lloyd's algorithm over these binary vectors (Euclidean
//! objective, mean centroids) groups pages that "point to pages in other
//! supernodes" the same way.
//!
//! Following the paper: the initial `k` equals the element's supernode
//! out-degree, the run is bounded, and a non-converged run is an *abort*
//! that the caller retries with `k + 2`.
//!
//! Vectors are sparse (pages link to a handful of supernodes); distances
//! are computed as `‖c‖² − 2·Σ_{d∈p} c_d + |p|`, so each page costs
//! `O(|p|)` per centroid rather than `O(D)`.

use rand::rngs::SmallRng;
use rand::Rng;

/// Outcome of one bounded k-means run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KMeansOutcome {
    /// Assignments stabilised within the iteration bound.
    Converged {
        /// Cluster index per input vector.
        assignment: Vec<u32>,
        /// Number of non-empty clusters.
        non_empty: u32,
    },
    /// The iteration bound was hit first (the paper's "abort" signal).
    Aborted,
}

/// Parameters for a bounded k-means run.
#[derive(Debug, Clone, Copy)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: u32,
    /// Iteration bound standing in for the paper's wall-clock bound
    /// (which it determined experimentally; an iteration cap is the
    /// deterministic equivalent).
    pub max_iterations: u32,
    /// Operation budget — the deterministic stand-in for the paper's
    /// wall-clock execution bound ("a suitable upper bound was
    /// experimentally determined", §3.2 footnote 7). Counted in
    /// distance-evaluation units; a run whose cumulative cost would exceed
    /// the budget aborts, exactly like an over-time run in the paper. This
    /// is what makes clustered split abort on large elements with large
    /// supernode out-degrees, keeping the partition from shattering.
    ///
    /// The budget is charged per Lloyd iteration from the input *shape*
    /// (vector count, set bits, k, dims), so it is independent of thread
    /// count: a run aborts at the same iteration whether it executes on
    /// one worker or eight.
    pub max_ops: u64,
    /// Worker threads for the distance/assignment loop (1 = serial). The
    /// parallel loop partitions vectors into fixed chunks and computes each
    /// vector's nearest centroid independently, so assignments — and
    /// therefore every refinement decision downstream — are identical to
    /// the serial run.
    pub threads: u32,
}

/// Runs bounded Lloyd k-means over sparse binary vectors.
///
/// `vectors[i]` lists the set dimensions of vector `i` (sorted or not);
/// `dims` is the dimensionality.
pub fn kmeans_binary(
    vectors: &[Vec<u32>],
    dims: u32,
    params: KMeansParams,
    rng: &mut SmallRng,
) -> KMeansOutcome {
    let n = vectors.len();
    if n == 0 {
        return KMeansOutcome::Converged {
            assignment: Vec::new(),
            non_empty: 0,
        };
    }
    // k-means with more clusters than points is degenerate: the run fails,
    // which surfaces as an abort — the caller's `k += 2` retry then fails
    // too and clustered split gives up. The paper seeds k with the
    // supernode's out-degree and never clamps it, so this failure mode is
    // precisely what makes clustered split abort on the (very common)
    // elements whose out-degree exceeds their size, keeping the partition
    // coarse. Clamping k here instead would shatter the partition into
    // singletons.
    if params.k as usize > n {
        return KMeansOutcome::Aborted;
    }
    let k = (params.k as usize).max(1);
    let d = dims as usize;

    // Forgy initialisation: k distinct random *points* seed the centroids,
    // exactly as classic Lloyd k-means does. When many pages share the
    // same adjacency vector the seeds coincide and their clusters collapse
    // into one — so a cohesive element converges with far fewer non-empty
    // clusters than k. That collapse is load-bearing: it is how clustered
    // split produces a handful of meaningful groups (or just one,
    // aborting the split) instead of shattering an element into k shards.
    let mut centroids = vec![vec![0f32; d]; k];
    let mut picks: Vec<usize> = (0..n).collect();
    for c in 0..k {
        let j = rng.gen_range(c..n);
        picks.swap(c, j);
        for &dim in &vectors[picks[c]] {
            centroids[c][dim as usize] = 1.0;
        }
    }

    let mut assignment = vec![0u32; n];
    let mut converged = false;
    let total_set_bits: u64 = vectors.iter().map(|v| v.len() as u64).sum();
    // Cost model per Lloyd iteration: one dot product per (vector, centroid)
    // pair plus the centroid-norm refresh.
    let ops_per_iter = (total_set_bits + n as u64) * k as u64 + (k * d) as u64;
    let mut ops_used = 0u64;
    for _iter in 0..params.max_iterations {
        ops_used = ops_used.saturating_add(ops_per_iter);
        if ops_used > params.max_ops {
            return KMeansOutcome::Aborted;
        }
        // Precompute ‖c‖² per centroid.
        let norms: Vec<f32> = centroids
            .iter()
            .map(|c| c.iter().map(|x| x * x).sum())
            .collect();
        // Assign. Each vector's nearest centroid is an independent
        // computation (the per-vector dot products run serially inside one
        // task), so chunking over vectors changes nothing about the result.
        let mut changed = 0usize;
        let chunk_results = crate::par::par_chunks(params.threads, n, 256, |range| {
            let mut local = Vec::with_capacity(range.len());
            let mut local_changed = 0usize;
            for i in range {
                let vec = &vectors[i];
                let mut best = 0u32;
                let mut best_dist = f32::INFINITY;
                for (ci, c) in centroids.iter().enumerate() {
                    let dot: f32 = vec.iter().map(|&dim| c[dim as usize]).sum();
                    let dist = norms[ci] - 2.0 * dot + vec.len() as f32;
                    if dist < best_dist {
                        best_dist = dist;
                        best = ci as u32;
                    }
                }
                if assignment[i] != best {
                    local_changed += 1;
                }
                local.push(best);
            }
            (local, local_changed)
        });
        let mut write = 0usize;
        for (local, local_changed) in chunk_results {
            changed += local_changed;
            assignment[write..write + local.len()].copy_from_slice(&local);
            write += local.len();
        }
        if changed == 0 {
            converged = true;
            break;
        }
        // Update centroids to cluster means.
        let mut counts = vec![0u32; k];
        for c in &mut centroids {
            c.iter_mut().for_each(|x| *x = 0.0);
        }
        for (i, vec) in vectors.iter().enumerate() {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for &dim in vec {
                centroids[c][dim as usize] += 1.0;
            }
        }
        for (c, &count) in centroids.iter_mut().zip(&counts) {
            if count > 0 {
                let inv = 1.0 / count as f32;
                c.iter_mut().for_each(|x| *x *= inv);
            }
        }
    }

    if !converged {
        return KMeansOutcome::Aborted;
    }
    let mut seen = vec![false; k];
    for &a in &assignment {
        seen[a as usize] = true;
    }
    KMeansOutcome::Converged {
        assignment,
        non_empty: seen.iter().filter(|&&s| s).count() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    #[test]
    fn two_obvious_clusters_separate() {
        // Vectors over 8 dims: half set {0,1,2}, half set {5,6,7}. Forgy
        // init may seed both centroids inside one group (collapsing to a
        // single cluster), which is exactly the retry case the paper's
        // clustered split handles by re-running — so try a few seeds and
        // require that some run separates the groups perfectly.
        let mut vectors = Vec::new();
        for _ in 0..10 {
            vectors.push(vec![0, 1, 2]);
        }
        for _ in 0..10 {
            vectors.push(vec![5, 6, 7]);
        }
        let separated = (0..8u64).any(|seed| {
            let out = kmeans_binary(
                &vectors,
                8,
                KMeansParams {
                    k: 2,
                    max_iterations: 50,
                    max_ops: u64::MAX,
                    threads: 1,
                },
                &mut SmallRng::seed_from_u64(seed),
            );
            match out {
                KMeansOutcome::Converged {
                    assignment,
                    non_empty: 2,
                } => {
                    let first = assignment[0];
                    assignment[..10].iter().all(|&a| a == first)
                        && assignment[10..].iter().all(|&a| a != first)
                }
                _ => false,
            }
        });
        assert!(separated, "no seed separated two obvious clusters");
    }

    #[test]
    fn identical_vectors_form_one_cluster() {
        let vectors = vec![vec![1u32, 3]; 12];
        let out = kmeans_binary(
            &vectors,
            5,
            KMeansParams {
                k: 3,
                max_iterations: 20,
                max_ops: u64::MAX,
                threads: 1,
            },
            &mut rng(),
        );
        let KMeansOutcome::Converged { non_empty, .. } = out else {
            panic!("identical vectors converge immediately");
        };
        // All identical vectors land in the same (single) cluster.
        assert_eq!(non_empty, 1);
    }

    #[test]
    fn k_larger_than_n_aborts() {
        // The paper seeds k with the supernode out-degree and never clamps
        // it; k > n is a degenerate clustering problem and must abort (this
        // failure mode is what keeps clustered split from shattering the
        // partition — see module docs).
        let vectors = vec![vec![0u32], vec![1], vec![2]];
        let out = kmeans_binary(
            &vectors,
            3,
            KMeansParams {
                k: 10,
                max_iterations: 20,
                max_ops: u64::MAX,
                threads: 1,
            },
            &mut rng(),
        );
        assert_eq!(out, KMeansOutcome::Aborted);
    }

    #[test]
    fn empty_input() {
        let out = kmeans_binary(
            &[],
            4,
            KMeansParams {
                k: 2,
                max_iterations: 5,
                max_ops: u64::MAX,
                threads: 1,
            },
            &mut rng(),
        );
        assert_eq!(
            out,
            KMeansOutcome::Converged {
                assignment: Vec::new(),
                non_empty: 0
            }
        );
    }

    #[test]
    fn zero_iteration_bound_aborts() {
        let vectors = vec![vec![0u32], vec![1]];
        let out = kmeans_binary(
            &vectors,
            2,
            KMeansParams {
                k: 2,
                max_iterations: 0,
                max_ops: u64::MAX,
                threads: 1,
            },
            &mut rng(),
        );
        assert_eq!(out, KMeansOutcome::Aborted);
    }

    #[test]
    fn empty_vectors_are_allowed() {
        // Pages that link to no other supernode have empty adj vectors.
        let vectors = vec![vec![], vec![0u32, 1], vec![], vec![0, 1]];
        let out = kmeans_binary(
            &vectors,
            2,
            KMeansParams {
                k: 2,
                max_iterations: 30,
                max_ops: u64::MAX,
                threads: 1,
            },
            &mut rng(),
        );
        let KMeansOutcome::Converged { assignment, .. } = out else {
            panic!("should converge");
        };
        assert_eq!(assignment[0], assignment[2]);
        assert_eq!(assignment[1], assignment[3]);
        assert_ne!(assignment[0], assignment[1]);
    }

    #[test]
    fn ops_budget_aborts_expensive_runs() {
        let vectors: Vec<Vec<u32>> = (0..200u32).map(|i| vec![i % 50]).collect();
        let out = kmeans_binary(
            &vectors,
            50,
            KMeansParams {
                k: 50,
                max_iterations: 100,
                max_ops: 10, // absurdly small: first iteration already over
                threads: 1,
            },
            &mut rng(),
        );
        assert_eq!(out, KMeansOutcome::Aborted);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let vectors: Vec<Vec<u32>> = (0..40u32).map(|i| vec![i % 7, (i * 3) % 7]).collect();
        let p = KMeansParams {
            k: 4,
            max_iterations: 40,
            max_ops: u64::MAX,
            threads: 1,
        };
        let a = kmeans_binary(&vectors, 7, p, &mut SmallRng::seed_from_u64(9));
        let b = kmeans_binary(&vectors, 7, p, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
