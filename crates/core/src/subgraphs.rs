//! Intranode and superedge graph codecs (§2, §3.3).
//!
//! * An **intranode graph** holds the links among the pages of one
//!   supernode, in local page indices (0..|Ni|), reference-encoded.
//! * A **superedge graph** for superedge `i → j` holds the bipartite links
//!   from `Ni` into `Nj`. It is stored either **positive** (the links that
//!   exist: a gap-coded list of source pages that have any target, plus one
//!   reference-encoded target list per such source) or **negative** (the
//!   complement: one target list per *every* source of `Ni`, listing the
//!   `Nj` pages it does **not** link to). The representation with the
//!   smaller encoding wins; the paper's simpler edge-count heuristic is
//!   available behind [`SuperedgePolicy::EdgeCount`] for the ablation.

use crate::codec::ListCodec;
use crate::refenc::{
    bounded_gap_list_len, encode_lists_planned, encode_lists_t, plan_lists, EncodedLists,
    ListsPlan, ListsReader, RefMode, Universe,
};
use crate::{Result, SNodeError};
use wg_bitio::{codes, BitReader, BitWriter};

/// How to choose between positive and negative superedge graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuperedgePolicy {
    /// Compare actual encoded sizes (both candidates are encoded; the
    /// smaller is kept). Default.
    #[default]
    EncodedSize,
    /// The paper's stated heuristic: fewer edges wins (footnote 4 notes
    /// this is approximate).
    EdgeCount,
}

/// Flag stored with each encoded superedge graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuperedgeKind {
    /// Links that exist.
    Positive,
    /// Links that do not exist (complement within `Ni × Nj`).
    Negative,
}

// --- Intranode graphs ---------------------------------------------------

/// Encodes an intranode graph: `lists[p]` is the sorted local adjacency of
/// local page `p` (entries `< lists.len()`).
pub fn encode_intranode(lists: &[Vec<u32>], mode: RefMode, codec: ListCodec) -> EncodedLists {
    encode_intranode_t(lists, mode, codec, 1)
}

/// [`encode_intranode`] with up to `threads` workers. Byte-identical for
/// every thread count.
pub fn encode_intranode_t(
    lists: &[Vec<u32>],
    mode: RefMode,
    codec: ListCodec,
    threads: u32,
) -> EncodedLists {
    encode_lists_t(lists, lists.len() as u64, mode, codec, threads)
}

/// Decodes a full intranode graph.
pub fn decode_intranode(bytes: &[u8], bit_len: u64, codec: ListCodec) -> Result<Vec<Vec<u32>>> {
    ListsReader::parse(bytes, bit_len, Universe::SameAsCount, codec)?.decode_all()
}

// --- Superedge graphs -----------------------------------------------------

/// An encoded superedge graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSuperedge {
    /// Positive or negative representation.
    pub kind: SuperedgeKind,
    /// The bit stream (self-contained: kind, |Ni|, payload).
    pub bytes: Vec<u8>,
    /// Exact bit length.
    pub bit_len: u64,
}

impl EncodedSuperedge {
    /// Size in bits.
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }
}

/// Encodes the superedge graph for `i → j`.
///
/// `pos_lists[s]` is the sorted list of local `Nj` targets of the `s`-th
/// page of `Ni` (possibly empty); `nj = |Nj|`.
pub fn encode_superedge(
    pos_lists: &[Vec<u32>],
    nj: u64,
    mode: RefMode,
    policy: SuperedgePolicy,
    codec: ListCodec,
) -> EncodedSuperedge {
    encode_superedge_t(pos_lists, nj, mode, policy, codec, 1)
}

/// [`encode_superedge`] with up to `threads` workers. Byte-identical for
/// every thread count.
///
/// The polarity decision works on [`ListsPlan`]s — exact sizes computed
/// without writing a bit stream — so only the winning orientation is ever
/// encoded. (The plan's `total_bits` equals the encoded size exactly, so
/// the winner is the same one full encoding of both sides would pick.)
pub fn encode_superedge_t(
    pos_lists: &[Vec<u32>],
    nj: u64,
    mode: RefMode,
    policy: SuperedgePolicy,
    codec: ListCodec,
    threads: u32,
) -> EncodedSuperedge {
    let ni = pos_lists.len() as u64;
    let pos_edges: u64 = pos_lists.iter().map(|l| l.len() as u64).sum();
    let total = ni * nj;
    let neg_edges = total - pos_edges;

    let (sources, pos_dense) = positive_sources(pos_lists);
    // Only consider the complement when it has fewer edges — otherwise
    // materialising it could cost Θ(|Ni|·|Nj|) for nothing.
    if neg_edges >= pos_edges {
        let pos = plan_positive(&sources, &pos_dense, ni, nj, mode, codec, threads);
        return write_superedge_positive(&sources, &pos_dense, ni, nj, &pos, codec, threads);
    }
    let neg_lists: Vec<Vec<u32>> = pos_lists.iter().map(|l| complement(l, nj as u32)).collect();
    let neg_plan = plan_lists(&neg_lists, nj, mode, codec, threads);
    let negative_wins = match policy {
        SuperedgePolicy::EncodedSize => {
            let pos = plan_positive(&sources, &pos_dense, ni, nj, mode, codec, threads);
            let neg_bits = 1 + neg_plan.total_bits;
            if neg_bits >= pos.bits {
                return write_superedge_positive(
                    &sources, &pos_dense, ni, nj, &pos, codec, threads,
                );
            }
            true
        }
        SuperedgePolicy::EdgeCount => true, // neg_edges < pos_edges here
    };
    debug_assert!(negative_wins);
    write_superedge_negative(&neg_lists, nj, &neg_plan, threads)
}

/// A planned positive encoding: the standard per-source list stream, or
/// (when the codec's `singles` feature applies and wins) the
/// single-target dictionary layout, with the exact bit cost of whichever
/// was chosen.
struct PositivePlan {
    /// Plan for the standard list stream (used when `dict` is `None`).
    plan: ListsPlan,
    /// `Some((distinct targets, per-source dictionary index))` when the
    /// dictionary layout is chosen.
    dict: Option<(Vec<u32>, Vec<u32>)>,
    /// Exact encoded size in bits, kind and marker bits included.
    bits: u64,
}

/// Prices both positive layouts and keeps the cheaper one.
fn plan_positive(
    sources: &[u32],
    lists: &[Vec<u32>],
    ni: u64,
    nj: u64,
    mode: RefMode,
    codec: ListCodec,
    threads: u32,
) -> PositivePlan {
    let plan = plan_lists(lists, nj, mode, codec, threads);
    let marker = u64::from(codec.singles);
    let sources_bits = bounded_gap_list_len(sources, ni, codec);
    let standard = 1 + marker + sources_bits + plan.total_bits;
    if codec.singles {
        if let Some((dict, index)) = single_target_dict(lists) {
            let index_bits: u64 = index
                .iter()
                .map(|&i| codes::minimal_binary_len(u64::from(i), dict.len() as u64))
                .sum();
            let bits = 2 + sources_bits + bounded_gap_list_len(&dict, nj, codec) + index_bits;
            if bits < standard {
                return PositivePlan {
                    plan,
                    dict: Some((dict, index)),
                    bits,
                };
            }
        }
    }
    PositivePlan {
        plan,
        dict: None,
        bits: standard,
    }
}

/// When every (non-empty) source links to exactly one target, returns the
/// sorted distinct targets and each source's index into them. Real crawls
/// are full of such superedge graphs — site-template links where every
/// page of one site points at one or two hub pages of another — and the
/// per-source γ(len)+reference-flag overhead of the standard stream
/// dwarfs their information content.
fn single_target_dict(lists: &[Vec<u32>]) -> Option<(Vec<u32>, Vec<u32>)> {
    if lists.is_empty() || lists.iter().any(|l| l.len() != 1) {
        return None;
    }
    let mut dict: Vec<u32> = lists.iter().map(|l| l[0]).collect();
    dict.sort_unstable();
    dict.dedup();
    let index: Vec<u32> = lists
        .iter()
        .map(|l| dict.binary_search(&l[0]).unwrap_or_default() as u32)
        .collect();
    Some((dict, index))
}

/// Splits a dense per-source list array into (non-empty source ids, their
/// lists) — the positive representation's layout.
fn positive_sources(pos_lists: &[Vec<u32>]) -> (Vec<u32>, Vec<Vec<u32>>) {
    let sources: Vec<u32> = pos_lists
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(s, _)| s as u32)
        .collect();
    let lists: Vec<Vec<u32>> = sources
        .iter()
        .map(|&s| pos_lists[s as usize].clone())
        .collect();
    (sources, lists)
}

#[cfg(test)]
fn encode_superedge_positive(
    pos_lists: &[Vec<u32>],
    nj: u64,
    mode: RefMode,
    codec: ListCodec,
) -> EncodedSuperedge {
    let (sources, lists) = positive_sources(pos_lists);
    let pos = plan_positive(&sources, &lists, pos_lists.len() as u64, nj, mode, codec, 1);
    write_superedge_positive(&sources, &lists, pos_lists.len() as u64, nj, &pos, codec, 1)
}

fn write_superedge_positive(
    sources: &[u32],
    lists: &[Vec<u32>],
    ni: u64,
    nj: u64,
    pos: &PositivePlan,
    codec: ListCodec,
    threads: u32,
) -> EncodedSuperedge {
    let mut w = BitWriter::new();
    w.write_bit(false); // kind = positive
                        // |Ni| is NOT stored: the resident supernode metadata knows every
                        // supernode's size, and the decoder receives it as a parameter.
    if codec.singles {
        // Layout marker: dictionary (1) vs standard list stream (0).
        w.write_bit(pos.dict.is_some());
    }
    crate::refenc::write_bounded_gap_list(&mut w, sources, ni, codec);
    match &pos.dict {
        Some((dict, index)) => {
            crate::refenc::write_bounded_gap_list(&mut w, dict, nj, codec);
            for &i in index {
                codes::write_minimal_binary(&mut w, u64::from(i), dict.len() as u64);
            }
        }
        None => {
            let enc = encode_lists_planned(lists, nj, &pos.plan, threads);
            w.append(&enc.bytes, enc.bit_len);
        }
    }
    let (bytes, bit_len) = w.finish();
    debug_assert_eq!(bit_len, pos.bits, "positive plan mispriced its layout");
    EncodedSuperedge {
        kind: SuperedgeKind::Positive,
        bytes,
        bit_len,
    }
}

fn write_superedge_negative(
    neg_lists: &[Vec<u32>],
    nj: u64,
    plan: &ListsPlan,
    threads: u32,
) -> EncodedSuperedge {
    let mut w = BitWriter::new();
    w.write_bit(true); // kind = negative
    let enc = encode_lists_planned(neg_lists, nj, plan, threads);
    w.append(&enc.bytes, enc.bit_len);
    let (bytes, bit_len) = w.finish();
    EncodedSuperedge {
        kind: SuperedgeKind::Negative,
        bytes,
        bit_len,
    }
}

/// Decodes a superedge graph back to **positive** lists, one per page of
/// `Ni` (empty where no links exist). `ni`/`nj` must match the encoding
/// call (the resident metadata records both).
pub fn decode_superedge(
    bytes: &[u8],
    bit_len: u64,
    ni: u64,
    nj: u64,
    codec: ListCodec,
) -> Result<Vec<Vec<u32>>> {
    let view = SuperedgeView::parse(bytes, bit_len, ni, nj, codec)?;
    let mut out = Vec::with_capacity(ni as usize);
    for s in 0..ni {
        out.push(view.targets_of(s, nj)?);
    }
    Ok(out)
}

/// Decodes a superedge graph into **sparse** positive form: the sorted
/// source ids that have at least one target, with one target list per such
/// source. The dense form ([`decode_superedge`]) allocates a vector per
/// page of `Ni` even though most pages have no cross-links into `Nj`; the
/// sparse form is what the query-time cache keeps.
pub fn decode_superedge_sparse(
    bytes: &[u8],
    bit_len: u64,
    ni: u64,
    nj: u64,
    codec: ListCodec,
) -> Result<(Vec<u32>, Vec<Vec<u32>>)> {
    let view = SuperedgeView::parse(bytes, bit_len, ni, nj, codec)?;
    match view.index.kind {
        SuperedgeKind::Positive => {
            let sources: Vec<u32> = view.index.sources.clone();
            let mut lists = Vec::with_capacity(sources.len());
            for (idx, _) in sources.iter().enumerate() {
                lists.push(view.index.stored_list(bytes, bit_len, idx as u32)?);
            }
            Ok((sources, lists))
        }
        SuperedgeKind::Negative => {
            let mut sources = Vec::new();
            let mut lists = Vec::new();
            for s in 0..ni {
                let list = view.targets_of(s, nj)?;
                if !list.is_empty() {
                    sources.push(s as u32);
                    lists.push(list);
                }
            }
            Ok((sources, lists))
        }
    }
}

/// Owned directory of an encoded superedge graph (no byte references) —
/// pair it with the bytes to decode, as with
/// [`crate::refenc::ListsIndex`].
#[derive(Debug, Clone)]
pub struct SuperedgeIndex {
    /// Representation stored.
    pub kind: SuperedgeKind,
    /// Number of source pages `|Ni|`.
    pub ni: u64,
    /// Positive only: sorted source ids with non-empty lists.
    pub(crate) sources: Vec<u32>,
    pub(crate) body: SuperedgeBody,
}

/// How the stored lists of a superedge graph are materialised.
///
/// The single-target dictionary body only ever pairs with
/// [`SuperedgeKind::Positive`]: [`SuperedgeIndex::parse`] reads the
/// layout marker exclusively on the positive path, so the invariant is
/// structural, not checked.
#[derive(Debug, Clone)]
pub(crate) enum SuperedgeBody {
    /// A reference-encoded list stream with its parsed directory.
    Lists(crate::refenc::ListsIndex),
    /// `+st` layout: each stored list is `vec![dict[index[i]]]`. Both
    /// vectors are fully materialised at parse time (they are tiny — one
    /// index per source, one entry per distinct target), so decodes are
    /// plain lookups.
    SingleTargets {
        dict: Vec<u32>,
        index: Vec<u32>,
        end_bit: u64,
    },
}

impl SuperedgeIndex {
    /// Parses the header and directory of an encoded superedge graph.
    /// `ni` = |Ni| and `nj` = |Nj| come from the supernode metadata; the
    /// codec comes from the directory's `meta.bin` header.
    pub fn parse(bytes: &[u8], bit_len: u64, ni: u64, nj: u64, codec: ListCodec) -> Result<Self> {
        let mut r = BitReader::with_bit_len(bytes, bit_len);
        let negative = r.read_bit()?;
        if negative {
            let offset = r.position();
            let lists = crate::refenc::ListsIndex::parse_at(
                bytes,
                bit_len,
                offset,
                crate::refenc::Universe::Explicit(nj),
                codec,
            )?;
            return Ok(Self {
                kind: SuperedgeKind::Negative,
                ni,
                sources: Vec::new(),
                body: SuperedgeBody::Lists(lists),
            });
        }
        let dict_layout = codec.singles && r.read_bit()?;
        let sources = crate::refenc::read_bounded_gap_list(&mut r, ni, codec)?;
        let body = if dict_layout {
            let dict = crate::refenc::read_bounded_gap_list(&mut r, nj, codec)?;
            if dict.last().is_some_and(|&t| u64::from(t) >= nj) {
                return Err(SNodeError::Corrupt(
                    "single-target dictionary entry outside |Nj|",
                ));
            }
            if dict.is_empty() && !sources.is_empty() {
                return Err(SNodeError::Corrupt("single-target dictionary is empty"));
            }
            let mut index = Vec::with_capacity(sources.len());
            for _ in 0..sources.len() {
                let v = codes::read_minimal_binary(&mut r, dict.len() as u64)?;
                index.push(u32::try_from(v).map_err(|_| {
                    SNodeError::Corrupt("single-target dictionary index overflows u32")
                })?);
            }
            SuperedgeBody::SingleTargets {
                dict,
                index,
                end_bit: r.position(),
            }
        } else {
            let offset = r.position();
            SuperedgeBody::Lists(crate::refenc::ListsIndex::parse_at(
                bytes,
                bit_len,
                offset,
                crate::refenc::Universe::Explicit(nj),
                codec,
            )?)
        };
        Ok(Self {
            kind: SuperedgeKind::Positive,
            ni,
            sources,
            body,
        })
    }

    /// The positive target list of local source `s` (`nj` = |Nj|).
    pub fn targets_of(&self, bytes: &[u8], bit_len: u64, s: u64, nj: u64) -> Result<Vec<u32>> {
        self.targets_of_with_memo(bytes, bit_len, s, nj, &mut crate::refenc::NoMemo)
    }

    /// [`SuperedgeIndex::targets_of`] decoding through a caller-supplied
    /// [`crate::refenc::DecodeMemo`].
    ///
    /// The memo is keyed in **lists-index space** — for a positive
    /// representation the key of source `s` is its position among the
    /// non-empty sources, for a negative one it is `s` itself — never in
    /// source-id space, so reference-chain prefixes shared between sources
    /// are decoded once and found again whatever source asks next. Negative
    /// representations complement outside the memo: only the stored
    /// (negative) lists are memoised, not the expanded complements.
    pub fn targets_of_with_memo(
        &self,
        bytes: &[u8],
        bit_len: u64,
        s: u64,
        nj: u64,
        memo: &mut dyn crate::refenc::DecodeMemo,
    ) -> Result<Vec<u32>> {
        if s >= self.ni {
            return Err(SNodeError::Corrupt("superedge source out of range"));
        }
        match &self.body {
            SuperedgeBody::SingleTargets { dict, index, .. } => {
                // Single-target bodies are always positive.
                match self.sources.binary_search(&(s as u32)) {
                    Ok(i) => Ok(vec![Self::dict_target(dict, index, i)?]),
                    Err(_) => Ok(Vec::new()),
                }
            }
            SuperedgeBody::Lists(lists) => match self.kind {
                SuperedgeKind::Positive => match self.sources.binary_search(&(s as u32)) {
                    Ok(idx) => lists.decode_list_with_memo(bytes, bit_len, idx as u32, memo),
                    Err(_) => Ok(Vec::new()),
                },
                SuperedgeKind::Negative => {
                    let neg = lists.decode_list_with_memo(bytes, bit_len, s as u32, memo)?;
                    Ok(complement(&neg, nj as u32))
                }
            },
        }
    }

    /// The target of stored slot `i` of a single-target body. Parse
    /// validates every index against the dictionary, so a miss here means
    /// the directory was mutated after parsing.
    fn dict_target(dict: &[u32], index: &[u32], i: usize) -> Result<u32> {
        index
            .get(i)
            .and_then(|&d| dict.get(d as usize))
            .copied()
            .ok_or(SNodeError::Corrupt("single-target dictionary slot missing"))
    }

    /// Total number of positive edges represented.
    pub fn count_positive_edges(&self, bytes: &[u8], bit_len: u64, nj: u64) -> Result<u64> {
        let lists = match &self.body {
            // One target per stored source, by construction.
            SuperedgeBody::SingleTargets { index, .. } => return Ok(index.len() as u64),
            SuperedgeBody::Lists(lists) => lists,
        };
        let mut total = 0u64;
        match self.kind {
            SuperedgeKind::Positive => {
                for idx in 0..lists.num_lists() {
                    total += lists.decode_list(bytes, bit_len, idx)?.len() as u64;
                }
            }
            SuperedgeKind::Negative => {
                for s in 0..self.ni {
                    let neg = lists.decode_list(bytes, bit_len, s as u32)?;
                    total += nj - neg.len() as u64;
                }
            }
        }
        Ok(total)
    }

    /// Approximate heap footprint of the directory.
    pub fn heap_bytes(&self) -> usize {
        let body = match &self.body {
            SuperedgeBody::Lists(lists) => lists.heap_bytes(),
            SuperedgeBody::SingleTargets { dict, index, .. } => (dict.len() + index.len()) * 4,
        };
        self.sources.len() * 4 + body + std::mem::size_of::<Self>()
    }

    /// Directory over the stored lists — one per non-empty source for
    /// [`SuperedgeKind::Positive`], one per source page for
    /// [`SuperedgeKind::Negative`] — or `None` for the single-target
    /// dictionary layout, which stores no list stream.
    pub fn lists(&self) -> Option<&crate::refenc::ListsIndex> {
        match &self.body {
            SuperedgeBody::Lists(lists) => Some(lists),
            SuperedgeBody::SingleTargets { .. } => None,
        }
    }

    /// Number of stored lists (in stored order, not source-id space).
    pub fn num_stored_lists(&self) -> u32 {
        match &self.body {
            SuperedgeBody::Lists(lists) => lists.num_lists(),
            SuperedgeBody::SingleTargets { index, .. } => index.len() as u32,
        }
    }

    /// Decodes stored list `i` (in stored order, not source-id space).
    pub fn stored_list(&self, bytes: &[u8], bit_len: u64, i: u32) -> Result<Vec<u32>> {
        match &self.body {
            SuperedgeBody::Lists(lists) => lists.decode_list(bytes, bit_len, i),
            SuperedgeBody::SingleTargets { dict, index, .. } => {
                Ok(vec![Self::dict_target(dict, index, i as usize)?])
            }
        }
    }

    /// First bit past the encoded payload.
    pub fn end_bit(&self) -> u64 {
        match &self.body {
            SuperedgeBody::Lists(lists) => lists.end_bit(),
            SuperedgeBody::SingleTargets { end_bit, .. } => *end_bit,
        }
    }

    /// Positive encodings only: the sorted source ids with non-empty
    /// target lists (empty for negative encodings).
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }
}

/// A parsed superedge graph bound to its bytes, supporting per-source
/// random access.
#[derive(Debug)]
pub struct SuperedgeView<'a> {
    bytes: &'a [u8],
    bit_len: u64,
    index: SuperedgeIndex,
}

impl SuperedgeView<'_> {
    /// The parsed directory.
    pub fn index(&self) -> &SuperedgeIndex {
        &self.index
    }
}

impl<'a> SuperedgeView<'a> {
    /// Parses the header and directory of an encoded superedge graph.
    pub fn parse(
        bytes: &'a [u8],
        bit_len: u64,
        ni: u64,
        nj: u64,
        codec: ListCodec,
    ) -> Result<Self> {
        Ok(Self {
            bytes,
            bit_len,
            index: SuperedgeIndex::parse(bytes, bit_len, ni, nj, codec)?,
        })
    }

    /// Representation stored.
    pub fn kind(&self) -> SuperedgeKind {
        self.index.kind
    }

    /// Number of source pages `|Ni|`.
    pub fn ni(&self) -> u64 {
        self.index.ni
    }

    /// The positive target list of local source `s` (`nj` = |Nj|).
    pub fn targets_of(&self, s: u64, nj: u64) -> Result<Vec<u32>> {
        self.index.targets_of(self.bytes, self.bit_len, s, nj)
    }

    /// Total number of positive edges represented.
    pub fn count_positive_edges(&self, nj: u64) -> Result<u64> {
        self.index
            .count_positive_edges(self.bytes, self.bit_len, nj)
    }
}

/// Sorted complement of `list` within `0..n`.
fn complement(list: &[u32], n: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity((n as usize).saturating_sub(list.len()));
    let mut li = 0usize;
    for x in 0..n {
        if li < list.len() && list[li] == x {
            li += 1;
        } else {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> [RefMode; 3] {
        [RefMode::None, RefMode::Windowed(8), RefMode::Exact]
    }

    #[test]
    fn intranode_round_trip() {
        let lists = vec![vec![1u32, 2], vec![0, 2], vec![], vec![0, 1, 2]];
        for mode in modes() {
            let enc = encode_intranode(&lists, mode, ListCodec::GAMMA);
            assert_eq!(
                decode_intranode(&enc.bytes, enc.bit_len, ListCodec::GAMMA).unwrap(),
                lists
            );
        }
    }

    #[test]
    fn sparse_superedge_stays_positive() {
        // 10 sources into |Nj| = 50, very few links.
        let mut pos = vec![Vec::new(); 10];
        pos[2] = vec![5u32, 9];
        pos[7] = vec![5];
        for mode in modes() {
            let enc = encode_superedge(
                &pos,
                50,
                mode,
                SuperedgePolicy::EncodedSize,
                ListCodec::GAMMA,
            );
            assert_eq!(enc.kind, SuperedgeKind::Positive);
            assert_eq!(
                decode_superedge(&enc.bytes, enc.bit_len, 10, 50, ListCodec::GAMMA).unwrap(),
                pos
            );
        }
    }

    #[test]
    fn dense_superedge_goes_negative() {
        // Every source links to all but one target: complement is tiny.
        let nj = 30u32;
        let pos: Vec<Vec<u32>> = (0..8u32)
            .map(|s| (0..nj).filter(|&t| t != s % nj).collect())
            .collect();
        let enc = encode_superedge(
            &pos,
            u64::from(nj),
            RefMode::Windowed(4),
            SuperedgePolicy::EncodedSize,
            ListCodec::GAMMA,
        );
        assert_eq!(enc.kind, SuperedgeKind::Negative);
        assert_eq!(
            decode_superedge(&enc.bytes, enc.bit_len, 8, u64::from(nj), ListCodec::GAMMA).unwrap(),
            pos
        );
    }

    #[test]
    fn fully_dense_superedge_negative_is_empty_lists() {
        // All sources link to all targets: the paper's SEdgeNeg is an empty
        // graph — the smallest possible representation.
        let nj = 12u32;
        let pos: Vec<Vec<u32>> = (0..5).map(|_| (0..nj).collect()).collect();
        let enc = encode_superedge(
            &pos,
            u64::from(nj),
            RefMode::Windowed(4),
            SuperedgePolicy::EncodedSize,
            ListCodec::GAMMA,
        );
        assert_eq!(enc.kind, SuperedgeKind::Negative);
        let sparse =
            encode_superedge_positive(&pos, u64::from(nj), RefMode::Windowed(4), ListCodec::GAMMA);
        assert!(enc.bit_len < sparse.bit_len / 2);
        assert_eq!(
            decode_superedge(&enc.bytes, enc.bit_len, 5, u64::from(nj), ListCodec::GAMMA).unwrap(),
            pos
        );
    }

    #[test]
    fn edge_count_policy_matches_paper_heuristic() {
        let nj = 10u32;
        // 6 of 10 targets linked per source: negative has fewer edges.
        let pos: Vec<Vec<u32>> = (0..4).map(|_| vec![0u32, 1, 2, 3, 4, 5]).collect();
        let enc = encode_superedge(
            &pos,
            u64::from(nj),
            RefMode::None,
            SuperedgePolicy::EdgeCount,
            ListCodec::GAMMA,
        );
        assert_eq!(enc.kind, SuperedgeKind::Negative);
        assert_eq!(
            decode_superedge(&enc.bytes, enc.bit_len, 4, u64::from(nj), ListCodec::GAMMA).unwrap(),
            pos
        );
    }

    #[test]
    fn per_source_random_access() {
        let mut pos = vec![Vec::new(); 20];
        pos[3] = vec![0u32, 7, 14];
        pos[11] = vec![7];
        pos[19] = vec![0, 1, 2];
        let enc = encode_superedge(
            &pos,
            15,
            RefMode::Windowed(4),
            SuperedgePolicy::EncodedSize,
            ListCodec::GAMMA,
        );
        let view = SuperedgeView::parse(&enc.bytes, enc.bit_len, 20, 15, ListCodec::GAMMA).unwrap();
        assert_eq!(view.ni(), 20);
        for (s, expect) in pos.iter().enumerate() {
            assert_eq!(&view.targets_of(s as u64, 15).unwrap(), expect);
        }
        assert!(view.targets_of(20, 15).is_err());
        assert_eq!(view.count_positive_edges(15).unwrap(), 7);
    }

    #[test]
    fn negative_view_random_access() {
        let nj = 9u32;
        let pos: Vec<Vec<u32>> = (0..6u32)
            .map(|s| (0..nj).filter(|&t| t != s && t != (s + 1) % nj).collect())
            .collect();
        let enc = encode_superedge(
            &pos,
            u64::from(nj),
            RefMode::Windowed(4),
            SuperedgePolicy::EncodedSize,
            ListCodec::GAMMA,
        );
        assert_eq!(enc.kind, SuperedgeKind::Negative);
        let view =
            SuperedgeView::parse(&enc.bytes, enc.bit_len, 6, u64::from(nj), ListCodec::GAMMA)
                .unwrap();
        for (s, expect) in pos.iter().enumerate() {
            assert_eq!(&view.targets_of(s as u64, u64::from(nj)).unwrap(), expect);
        }
        assert_eq!(
            view.count_positive_edges(u64::from(nj)).unwrap(),
            pos.iter().map(|l| l.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn empty_superedge_inputs() {
        let enc = encode_superedge(
            &[],
            5,
            RefMode::None,
            SuperedgePolicy::EncodedSize,
            ListCodec::GAMMA,
        );
        assert_eq!(
            decode_superedge(&enc.bytes, enc.bit_len, 0, 5, ListCodec::GAMMA).unwrap(),
            Vec::<Vec<u32>>::new()
        );
    }

    #[test]
    fn complement_is_involutive() {
        let list = vec![1u32, 4, 5, 8];
        let c = complement(&list, 10);
        assert_eq!(c, vec![0, 2, 3, 6, 7, 9]);
        assert_eq!(complement(&c, 10), list);
        assert_eq!(complement(&[], 3), vec![0, 1, 2]);
        assert_eq!(complement(&[0, 1, 2], 3), Vec::<u32>::new());
    }

    fn st_codec() -> ListCodec {
        ListCodec {
            singles: true,
            ..ListCodec::GAMMA
        }
    }

    #[test]
    fn single_target_dictionary_round_trip_and_wins() {
        // Site-template shape: 40 sources, each linking to one of 3 hubs.
        let pos: Vec<Vec<u32>> = (0..40u32)
            .map(|s| vec![[2u32, 9, 14][(s % 3) as usize]])
            .collect();
        let st = st_codec();
        let enc = encode_superedge(
            &pos,
            20,
            RefMode::Windowed(8),
            SuperedgePolicy::EncodedSize,
            st,
        );
        assert_eq!(enc.kind, SuperedgeKind::Positive);
        let plain = encode_superedge(
            &pos,
            20,
            RefMode::Windowed(8),
            SuperedgePolicy::EncodedSize,
            ListCodec::GAMMA,
        );
        assert!(
            enc.bit_len < plain.bit_len,
            "dictionary {} must beat standard {}",
            enc.bit_len,
            plain.bit_len
        );
        assert_eq!(
            decode_superedge(&enc.bytes, enc.bit_len, 40, 20, st).unwrap(),
            pos
        );
        let view = SuperedgeView::parse(&enc.bytes, enc.bit_len, 40, 20, st).unwrap();
        assert!(view.index().lists().is_none(), "must store no list stream");
        assert_eq!(view.index().num_stored_lists(), 40);
        assert_eq!(view.index().end_bit(), enc.bit_len);
        assert_eq!(view.count_positive_edges(20).unwrap(), 40);
        let (srcs, lists) = decode_superedge_sparse(&enc.bytes, enc.bit_len, 40, 20, st).unwrap();
        assert_eq!(srcs, (0..40u32).collect::<Vec<_>>());
        assert!(lists.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn singles_codec_falls_back_on_multi_target_lists() {
        let mut pos = vec![Vec::new(); 10];
        pos[2] = vec![5u32, 9];
        pos[7] = vec![5];
        let st = st_codec();
        let enc = encode_superedge(
            &pos,
            50,
            RefMode::Windowed(8),
            SuperedgePolicy::EncodedSize,
            st,
        );
        assert_eq!(enc.kind, SuperedgeKind::Positive);
        assert_eq!(
            decode_superedge(&enc.bytes, enc.bit_len, 10, 50, st).unwrap(),
            pos
        );
        let view = SuperedgeView::parse(&enc.bytes, enc.bit_len, 10, 50, st).unwrap();
        assert!(
            view.index().lists().is_some(),
            "mixed lists must keep the standard stream"
        );
    }

    #[test]
    fn singles_codec_decodes_identically_across_shapes() {
        // Sparse single-target, mixed, dense (negative), and empty inputs
        // all decode to the same lists under γ and γ+st.
        let nj = 16u32;
        let cases: Vec<Vec<Vec<u32>>> = vec![
            (0..25u32).map(|s| vec![s % nj]).collect(),
            vec![vec![0u32, 1], vec![3], vec![], vec![3]],
            (0..6u32)
                .map(|s| (0..nj).filter(|&t| t != s).collect())
                .collect(),
            Vec::new(),
        ];
        for pos in &cases {
            let st = st_codec();
            for mode in modes() {
                let a =
                    encode_superedge(pos, u64::from(nj), mode, SuperedgePolicy::EncodedSize, st);
                let ni = pos.len() as u64;
                assert_eq!(
                    decode_superedge(&a.bytes, a.bit_len, ni, u64::from(nj), st).unwrap(),
                    *pos
                );
            }
        }
    }

    #[test]
    fn singles_stream_truncation_and_bit_flips_never_panic() {
        let pos: Vec<Vec<u32>> = (0..30u32).map(|s| vec![(s * 7) % 11]).collect();
        let st = st_codec();
        let enc = encode_superedge(
            &pos,
            11,
            RefMode::Windowed(8),
            SuperedgePolicy::EncodedSize,
            st,
        );
        for cut in 0..enc.bit_len {
            // Must not panic; may error or (for generous cuts) succeed.
            let _ = decode_superedge(&enc.bytes, cut, 30, 11, st);
        }
        for flip in 0..enc.bit_len {
            let mut bytes = enc.bytes.clone();
            bytes[(flip / 8) as usize] ^= 1 << (flip % 8);
            if let Ok(lists) = decode_superedge(&bytes, enc.bit_len, 30, 11, st) {
                for list in lists {
                    assert!(list.windows(2).all(|w| w[0] < w[1]), "flip {flip}");
                }
            }
        }
    }

    #[test]
    fn truncated_superedge_errors() {
        let pos = vec![vec![0u32, 1], vec![1]];
        let enc = encode_superedge(
            &pos,
            3,
            RefMode::None,
            SuperedgePolicy::EncodedSize,
            ListCodec::GAMMA,
        );
        for cut in 1..enc.bit_len {
            // Must not panic; may error or (for generous cuts) succeed.
            let _ = decode_superedge(&enc.bytes, cut, 2, 3, ListCodec::GAMMA);
        }
    }
}
