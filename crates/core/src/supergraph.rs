//! The supernode graph and its Huffman encoding (§3.3).
//!
//! One vertex per partition element; a superedge `i → j` iff some page of
//! `Ni` points into `Nj`. Supernode in-degrees are highly skewed (elements
//! holding popular domains are pointed at from everywhere), so adjacency
//! targets are coded with a canonical Huffman code keyed by in-degree —
//! short codes for popular supernodes.

use crate::partition::Partition;
use crate::{Result, SNodeError};
use wg_bitio::{codes, BitReader, BitWriter, HuffmanCode};
use wg_graph::Graph;

/// The top-level graph of an S-Node representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodeGraph {
    /// Sorted superedge targets per supernode.
    pub adj: Vec<Vec<u32>>,
}

impl SupernodeGraph {
    /// Builds the supernode graph for `partition` over `graph`.
    ///
    /// Self-superedges are *not* materialised: links inside an element are
    /// the intranode graph's business.
    pub fn from_partition(partition: &Partition, graph: &Graph) -> Self {
        let n = partition.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, e) in partition.elements.iter().enumerate() {
            let mut targets: Vec<u32> = e
                .pages
                .iter()
                .flat_map(|&p| graph.neighbors(p).iter().copied())
                .map(|t| partition.elem_of[t as usize])
                .filter(|&t| t != i as u32)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            adj[i] = targets;
        }
        Self { adj }
    }

    /// Number of supernodes.
    pub fn num_supernodes(&self) -> u32 {
        self.adj.len() as u32
    }

    /// Number of superedges.
    pub fn num_superedges(&self) -> u64 {
        self.adj.iter().map(|l| l.len() as u64).sum()
    }

    /// Superedge targets of supernode `i`.
    pub fn targets(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    /// In-degree per supernode (frequency of appearance in superedge lists).
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.adj.len()];
        for list in &self.adj {
            for &t in list {
                deg[t as usize] += 1;
            }
        }
        deg
    }

    /// The canonical Huffman code [`SupernodeGraph::encode`] writes: code
    /// lengths derived from in-degree frequencies, with a dummy count for
    /// symbol 0 when the graph has no superedges at all (so a valid, unused
    /// table still exists on disk).
    pub fn canonical_code(&self) -> HuffmanCode {
        let mut freqs = self.in_degrees();
        // Symbols that never occur still need no code; Huffman handles it.
        // Guard the all-zero case (no superedges at all).
        let any = freqs.iter().any(|&f| f > 0);
        if !any && !freqs.is_empty() {
            freqs[0] = 1; // dummy so a valid (unused) table exists
        }
        HuffmanCode::from_frequencies(&freqs)
    }

    /// Serialises the graph: header, Huffman length table, then per node a
    /// γ-coded degree and Huffman-coded targets.
    pub fn encode(&self) -> (Vec<u8>, u64) {
        let code = self.canonical_code();
        let mut w = BitWriter::new();
        codes::write_gamma(&mut w, self.adj.len() as u64);
        code.write_lengths(&mut w);
        for list in &self.adj {
            codes::write_gamma(&mut w, list.len() as u64);
            for &t in list {
                code.encode(&mut w, t);
            }
        }
        w.finish()
    }

    /// Deserialises a graph written by [`SupernodeGraph::encode`].
    pub fn decode(bytes: &[u8], bit_len: u64) -> Result<Self> {
        Ok(Self::decode_full(bytes, bit_len)?.0)
    }

    /// Like [`SupernodeGraph::decode`], additionally returning the stored
    /// Huffman length table and the bit position where decoding ended, so
    /// audits can check table canonicality and trailing garbage.
    pub fn decode_full(bytes: &[u8], bit_len: u64) -> Result<(Self, Vec<u32>, u64)> {
        let mut r = BitReader::with_bit_len(bytes, bit_len);
        let n = codes::read_gamma(&mut r)?;
        if n > u64::from(u32::MAX) {
            return Err(SNodeError::Corrupt("supernode count overflows u32"));
        }
        let code = HuffmanCode::read_lengths(&mut r)?;
        if code.num_symbols() != n as usize {
            return Err(SNodeError::Corrupt("huffman table size mismatch"));
        }
        let dec = code.decoder();
        let mut adj = Vec::with_capacity((n as usize).min(1 << 20));
        for _ in 0..n {
            let deg = codes::read_gamma(&mut r)?;
            let mut list = Vec::with_capacity(deg.min(1 << 20) as usize);
            for _ in 0..deg {
                let t = dec.decode(&mut r)?;
                if u64::from(t) >= n {
                    return Err(SNodeError::Corrupt("superedge target out of range"));
                }
                list.push(t);
            }
            adj.push(list);
        }
        let stored_lengths = code.lengths().to_vec();
        Ok((Self { adj }, stored_lengths, r.position()))
    }

    /// Size in bits of the Huffman-coded adjacency structure alone.
    pub fn encoded_bits(&self) -> u64 {
        self.encode().1
    }

    /// Figure 10 accounting: encoded adjacency structure plus a 4-byte
    /// pointer per vertex (→ intranode graph) and per edge (→ superedge
    /// graph).
    pub fn encoded_bytes_with_pointers(&self) -> u64 {
        let adj_bytes = self.encoded_bits().div_ceil(8);
        adj_bytes + 4 * u64::from(self.num_supernodes()) + 4 * self.num_superedges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;

    fn sample() -> (Partition, Graph) {
        // Domains: {0,1} -> elem 0, {2,3} -> elem 1, {4} -> elem 2.
        let domains = vec![0, 0, 1, 1, 2];
        let partition = Partition::initial(&domains);
        // Links: elem0 -> elem1 (0->2), elem0 internal (0->1),
        // elem1 -> elem2 (3->4), elem2 -> elem0 (4->1).
        let graph = Graph::from_edges(5, [(0, 2), (0, 1), (3, 4), (4, 1)]);
        (partition, graph)
    }

    #[test]
    fn superedges_follow_the_rule() {
        let (p, g) = sample();
        let sg = SupernodeGraph::from_partition(&p, &g);
        assert_eq!(sg.num_supernodes(), 3);
        assert_eq!(sg.targets(0), &[1]); // 0->2 crosses elem0->elem1
        assert_eq!(sg.targets(1), &[2]);
        assert_eq!(sg.targets(2), &[0]);
        assert_eq!(sg.num_superedges(), 3);
    }

    #[test]
    fn self_superedges_are_excluded() {
        let domains = vec![0, 0];
        let p = Partition::initial(&domains);
        let g = Graph::from_edges(2, [(0, 1), (1, 0)]);
        let sg = SupernodeGraph::from_partition(&p, &g);
        assert_eq!(sg.num_superedges(), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (p, g) = sample();
        let sg = SupernodeGraph::from_partition(&p, &g);
        let (bytes, bits) = sg.encode();
        let back = SupernodeGraph::decode(&bytes, bits).unwrap();
        assert_eq!(back, sg);
    }

    #[test]
    fn empty_graph_round_trips() {
        let sg = SupernodeGraph { adj: vec![] };
        let (bytes, bits) = sg.encode();
        let back = SupernodeGraph::decode(&bytes, bits).unwrap();
        assert_eq!(back, sg);
    }

    #[test]
    fn no_superedges_round_trips() {
        let sg = SupernodeGraph {
            adj: vec![vec![], vec![], vec![]],
        };
        let (bytes, bits) = sg.encode();
        let back = SupernodeGraph::decode(&bytes, bits).unwrap();
        assert_eq!(back, sg);
    }

    #[test]
    fn skewed_in_degrees_give_popular_nodes_short_codes() {
        // Supernode 0 is pointed at by everyone.
        let n = 40u32;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut l = vec![0u32];
                if i % 7 == 0 && i != 1 {
                    l.push(1);
                }
                l.retain(|&t| t != i);
                l.sort_unstable();
                l
            })
            .collect();
        let sg = SupernodeGraph { adj };
        let (bytes, bits) = sg.encode();
        let back = SupernodeGraph::decode(&bytes, bits).unwrap();
        assert_eq!(back, sg);
        // Size sanity: with ~46 edges mostly hitting node 0, the adjacency
        // payload should be far below fixed-width (46 * 6 bits).
        assert!(bits < 1500, "encoded bits {bits} unexpectedly large");
    }

    #[test]
    fn pointer_accounting_matches_formula() {
        let (p, g) = sample();
        let sg = SupernodeGraph::from_partition(&p, &g);
        let expect = sg.encoded_bits().div_ceil(8) + 4 * 3 + 4 * 3;
        assert_eq!(sg.encoded_bytes_with_pointers(), expect);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let (p, g) = sample();
        let sg = SupernodeGraph::from_partition(&p, &g);
        let (bytes, bits) = sg.encode();
        assert!(SupernodeGraph::decode(&bytes, bits / 2).is_err());
    }
}
