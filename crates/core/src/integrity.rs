//! The integrity manifest (`sums.bin`) — per-section CRC-32C checksums
//! over an S-Node directory.
//!
//! Design constraint: adding checksums must not change a single byte of
//! the existing files. The committed benchmark baselines fingerprint the
//! directory (`BENCH_build.json`), and byte-identical builds across
//! thread counts are a load-bearing property of the encoder — so the
//! checksums live in a **sidecar manifest** rather than inline trailers,
//! and the directory format version bump (v1 → [`DIRECTORY_VERSION`]) is
//! carried by the manifest itself. (`meta.bin` has since gained its own
//! v2 header word recording the list codec; default-γ builds differ from
//! v1 only in that one word.) Directories without a manifest (v1, or
//! hand-assembled) stay readable, unverified.
//!
//! The manifest covers every byte of the directory:
//!
//! * `meta.bin` is checksummed in four sections tiling the file —
//!   header (magic through the PageID index), supergraph, size table,
//!   domain index — so `wgr fsck` can localise damage within it;
//! * every other file (`index_NNN.bin`, `pagemap.bin`) gets a whole-file
//!   `(length, CRC)` record, which also witnesses truncation;
//! * every intranode/superedge blob gets its own CRC in linear order, the
//!   granularity the read path verifies at (one blob read = one check);
//! * the manifest ends with a CRC of itself, so corruption *of the
//!   checksums* is detected too, never misreported as data damage.

use crate::{Result, SNodeError};
use std::path::Path;
use wg_fault::crc32c;

/// Name of the manifest file inside a representation directory.
pub const SUMS_FILE: &str = "sums.bin";

/// Manifest magic: "SNCS" (S-Node CheckSums).
pub const SUMS_MAGIC: u32 = 0x534E_4353;

/// Directory format version this workspace writes. Version 1 is the
/// manifest-less layout; version 2 adds `sums.bin`. The bump lives here —
/// not in `meta.bin` — so fault-free v2 builds remain byte-identical to
/// v1 builds in every fingerprinted file.
pub const DIRECTORY_VERSION: u32 = 2;

/// Human names of the four `meta.bin` sections, index-aligned with
/// [`IntegrityManifest::meta_sections`].
pub const META_SECTION_NAMES: [&str; 4] = ["header", "supergraph", "size-table", "domain-index"];

/// One checksummed byte range of `meta.bin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaSection {
    /// Byte offset of the section start.
    pub start: u64,
    /// Section length in bytes.
    pub len: u64,
    /// CRC-32C of the section bytes.
    pub crc: u32,
}

/// Whole-file checksum record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSum {
    /// File name relative to the directory.
    pub name: String,
    /// Expected file length.
    pub len: u64,
    /// CRC-32C of the file bytes.
    pub crc: u32,
}

/// The parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityManifest {
    /// The four `meta.bin` sections, in [`META_SECTION_NAMES`] order.
    pub meta_sections: Vec<MetaSection>,
    /// Whole-file records for every file except the manifest itself,
    /// sorted by name.
    pub files: Vec<FileSum>,
    /// Per-blob CRCs in linear order: for each supernode `s`, its
    /// intranode graph, then its superedge graphs in `adj[s]` order.
    pub blob_crc: Vec<u32>,
}

/// Byte ranges of the four `meta.bin` sections, tiling the whole buffer.
/// Parses just enough structure to find the boundaries; full validation is
/// [`crate::disk::SNodeMeta::read`]'s job.
pub fn meta_section_bounds(buf: &[u8]) -> Result<[(u64, u64); 4]> {
    let mut c = Cur { buf, pos: 0 };
    c.u32()?; // magic
    if c.u32()? >= 2 {
        c.u32()?; // codec word (meta v2+)
    }
    c.u32()?; // num_pages
    let n = c.u32()? as u64;
    let header_end = c
        .pos
        .checked_add(
            (n as usize)
                .checked_add(1)
                .and_then(|k| k.checked_mul(4))
                .ok_or(SNodeError::Corrupt("meta header section size overflows"))?,
        )
        .ok_or(SNodeError::Corrupt("meta header section end overflows"))?;
    if header_end > buf.len() {
        return Err(SNodeError::Corrupt("meta file ends inside pageid index"));
    }
    c.pos = header_end;
    c.u64()?; // sg_bits
    let sg_len = c.u64()? as usize;
    let sg_end = c
        .pos
        .checked_add(sg_len)
        .ok_or(SNodeError::Corrupt("meta supergraph section end overflows"))?;
    if sg_end > buf.len() {
        return Err(SNodeError::Corrupt("meta file ends inside supergraph"));
    }
    c.pos = sg_end;
    c.u64()?; // max_file_bytes
    c.u64()?; // size_bits
    let size_len = c.u64()? as usize;
    let size_end = c
        .pos
        .checked_add(size_len)
        .ok_or(SNodeError::Corrupt("meta size-table section end overflows"))?;
    if size_end > buf.len() {
        return Err(SNodeError::Corrupt("meta file ends inside size table"));
    }
    Ok([
        (0, header_end as u64),
        (header_end as u64, (sg_end - header_end) as u64),
        (sg_end as u64, (size_end - sg_end) as u64),
        (size_end as u64, (buf.len() - size_end) as u64),
    ])
}

impl IntegrityManifest {
    /// Computes a manifest over the directory as it sits on disk: section
    /// CRCs from `meta.bin`, whole-file CRCs for everything except
    /// `sums.bin`, and the given per-blob CRCs (collected by the writer in
    /// linear order — recomputing them here would need the locator tables).
    pub fn compute(dir: &Path, blob_crc: Vec<u32>) -> Result<Self> {
        let meta_buf = wg_fault::read_file(&dir.join("meta.bin"))
            .map_err(|e| SNodeError::file_io(dir.join("meta.bin"), e))?;
        let bounds = meta_section_bounds(&meta_buf)?;
        let meta_sections = bounds
            .iter()
            .map(|&(start, len)| MetaSection {
                start,
                len,
                crc: crc32c(&meta_buf[start as usize..(start + len) as usize]),
            })
            .collect();

        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if !entry.metadata()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if name != SUMS_FILE {
                names.push(name);
            }
        }
        names.sort();
        let mut files = Vec::with_capacity(names.len());
        for name in names {
            let path = dir.join(&name);
            let bytes = wg_fault::read_file(&path).map_err(|e| SNodeError::file_io(path, e))?;
            files.push(FileSum {
                name,
                len: bytes.len() as u64,
                crc: crc32c(&bytes),
            });
        }
        Ok(Self {
            meta_sections,
            files,
            blob_crc,
        })
    }

    /// Serialises to `dir/sums.bin`, returning the bytes written.
    pub fn write(&self, dir: &Path) -> Result<u64> {
        let mut out = Vec::new();
        put_u32(&mut out, SUMS_MAGIC);
        put_u32(&mut out, DIRECTORY_VERSION);
        put_u32(&mut out, self.meta_sections.len() as u32);
        for s in &self.meta_sections {
            put_u64(&mut out, s.start);
            put_u64(&mut out, s.len);
            put_u32(&mut out, s.crc);
        }
        put_u32(&mut out, self.files.len() as u32);
        for f in &self.files {
            put_u32(&mut out, f.name.len() as u32);
            out.extend_from_slice(f.name.as_bytes());
            put_u64(&mut out, f.len);
            put_u32(&mut out, f.crc);
        }
        put_u64(&mut out, self.blob_crc.len() as u64);
        for &crc in &self.blob_crc {
            put_u32(&mut out, crc);
        }
        let self_crc = crc32c(&out);
        put_u32(&mut out, self_crc);
        let path = dir.join(SUMS_FILE);
        std::fs::write(&path, &out).map_err(|e| SNodeError::file_io(path, e))?;
        Ok(out.len() as u64)
    }

    /// Reads `dir/sums.bin`. `Ok(None)` when absent (a v1 directory —
    /// readable, unverified); an error when present but damaged, so
    /// manifest corruption is never mistaken for clean data.
    pub fn read(dir: &Path) -> Result<Option<Self>> {
        let path = dir.join(SUMS_FILE);
        let buf = match wg_fault::read_file(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SNodeError::file_io(path, e)),
        };
        if buf.len() < 4 {
            return Err(SNodeError::Corrupt(
                "integrity manifest shorter than its own checksum",
            ));
        }
        let body = &buf[..buf.len() - 4];
        let tail = &buf[buf.len() - 4..];
        let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
        if crc32c(body) != stored {
            return Err(SNodeError::Corrupt(
                "integrity manifest self-checksum mismatch",
            ));
        }
        let mut c = Cur { buf: body, pos: 0 };
        if c.u32()? != SUMS_MAGIC {
            return Err(SNodeError::Corrupt("bad integrity manifest magic"));
        }
        if c.u32()? != DIRECTORY_VERSION {
            return Err(SNodeError::Corrupt(
                "unsupported integrity manifest version",
            ));
        }
        let ns = c.u32()? as usize;
        let mut meta_sections = Vec::with_capacity(ns.min(1 << 10));
        for _ in 0..ns {
            let start = c.u64()?;
            let len = c.u64()?;
            let crc = c.u32()?;
            meta_sections.push(MetaSection { start, len, crc });
        }
        let nf = c.u32()? as usize;
        let mut files = Vec::with_capacity(nf.min(1 << 10));
        for _ in 0..nf {
            let name_len = c.u32()? as usize;
            let name_bytes = c.bytes(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| SNodeError::Corrupt("integrity manifest file name not utf-8"))?
                .to_string();
            let len = c.u64()?;
            let crc = c.u32()?;
            files.push(FileSum { name, len, crc });
        }
        let nb = c.u64()? as usize;
        let mut blob_crc = Vec::with_capacity(nb.min(1 << 20));
        for _ in 0..nb {
            blob_crc.push(c.u32()?);
        }
        Ok(Some(Self {
            meta_sections,
            files,
            blob_crc,
        }))
    }

    /// Whole-file record for `name`, if the manifest has one.
    pub fn file_sum(&self, name: &str) -> Option<&FileSum> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Verifies `bytes` against the whole-file record for `name`.
    /// `Ok(false)` when the manifest has no record for the file.
    pub fn check_file_bytes(&self, name: &str, bytes: &[u8]) -> Result<bool> {
        let Some(sum) = self.file_sum(name) else {
            return Ok(false);
        };
        if bytes.len() as u64 != sum.len {
            return Err(SNodeError::Corrupt(
                "file length differs from integrity manifest",
            ));
        }
        if crc32c(bytes) != sum.crc {
            return Err(SNodeError::Corrupt(
                "file checksum differs from integrity manifest",
            ));
        }
        Ok(true)
    }
}

/// Always-counted integrity check counters with an optional mirror into
/// the global registry (`integrity.checks` / `integrity.failures`),
/// following the workspace's two-tier metrics pattern.
#[derive(Debug, Default)]
pub struct IntegrityCounters {
    checks: wg_obs::Counter,
    failures: wg_obs::Counter,
    global: Option<(wg_obs::Counter, wg_obs::Counter)>,
}

impl IntegrityCounters {
    /// Instance counters, mirrored globally when metrics were enabled at
    /// construction time.
    pub fn new() -> Self {
        let global = if wg_obs::metrics_enabled() {
            let reg = wg_obs::global();
            Some((
                reg.counter("integrity.checks"),
                reg.counter("integrity.failures"),
            ))
        } else {
            None
        };
        Self {
            checks: wg_obs::Counter::default(),
            failures: wg_obs::Counter::default(),
            global,
        }
    }

    /// Records one verification performed.
    pub fn check(&self) {
        self.checks.inc();
        if let Some((c, _)) = &self.global {
            c.inc();
        }
    }

    /// Records one verification failure.
    pub fn failure(&self) {
        self.failures.inc();
        if let Some((_, f)) = &self.global {
            f.inc();
        }
    }

    /// Verifications performed by this instance.
    pub fn checks(&self) -> u64 {
        self.checks.get()
    }

    /// Verification failures seen by this instance.
    pub fn failures(&self) -> u64 {
        self.failures.get()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SNodeError::Corrupt("integrity manifest length overflows"))?;
        if end > self.buf.len() {
            return Err(SNodeError::Corrupt("integrity manifest truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_snode_integrity_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample() -> IntegrityManifest {
        IntegrityManifest {
            meta_sections: vec![
                MetaSection {
                    start: 0,
                    len: 16,
                    crc: 0xDEAD_BEEF,
                },
                MetaSection {
                    start: 16,
                    len: 4,
                    crc: 1,
                },
            ],
            files: vec![
                FileSum {
                    name: "index_000.bin".into(),
                    len: 123,
                    crc: 42,
                },
                FileSum {
                    name: "meta.bin".into(),
                    len: 20,
                    crc: 7,
                },
            ],
            blob_crc: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let dir = temp_dir("rt");
        let m = sample();
        m.write(&dir).unwrap();
        let back = IntegrityManifest::read(&dir).unwrap().expect("present");
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_manifest_reads_as_none() {
        let dir = temp_dir("absent");
        assert!(IntegrityManifest::read(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn any_flip_in_the_manifest_is_detected() {
        let dir = temp_dir("selfcrc");
        sample().write(&dir).unwrap();
        let clean = std::fs::read(dir.join(SUMS_FILE)).unwrap();
        for byte in (0..clean.len()).step_by(5) {
            let mut bad = clean.clone();
            bad[byte] ^= 0x10;
            std::fs::write(dir.join(SUMS_FILE), &bad).unwrap();
            assert!(
                IntegrityManifest::read(&dir).is_err(),
                "flip at byte {byte} undetected"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_file_bytes_verdicts() {
        let m = sample();
        // Unknown file: unverified, not an error.
        assert!(!m.check_file_bytes("nope.bin", &[]).unwrap());
        // Known file with wrong length / wrong bytes: errors.
        assert!(m.check_file_bytes("meta.bin", &[0u8; 3]).is_err());
        assert!(m.check_file_bytes("meta.bin", &[0u8; 20]).is_err());
        // Matching bytes: verified.
        let payload = vec![9u8; 20];
        let m2 = IntegrityManifest {
            files: vec![FileSum {
                name: "meta.bin".into(),
                len: 20,
                crc: crc32c(&payload),
            }],
            ..sample()
        };
        assert!(m2.check_file_bytes("meta.bin", &payload).unwrap());
    }
}
