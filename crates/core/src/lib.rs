//! **S-Node representation of Web graphs** — the primary contribution of
//! *Representing Web Graphs* (Raghavan & Garcia-Molina, ICDE 2003),
//! implemented in full.
//!
//! An S-Node representation is a two-level structure over a partition
//! `P = {N1..Nn}` of the repository's pages (§2 of the paper):
//!
//! * the **supernode graph** has one vertex per partition element and a
//!   superedge `i → j` iff some page of `Ni` links into `Nj`; it is Huffman
//!   encoded by supernode in-degree and stays resident in memory, acting as
//!   the index over
//! * per-element **intranode graphs** (links inside `Ni`) and per-superedge
//!   **positive or negative superedge graphs** (the bipartite links
//!   `Ni → Nj`, stored complemented when the complement is smaller), each
//!   compressed with reference encoding + γ-coded gap lists + RLE bit
//!   vectors (§3.1, §3.3).
//!
//! The partition is produced by **iterative refinement** (§3.2): start from
//! the domain partition, split elements by URL prefix (up to three
//! directory levels), then by k-means clustering of supernode-adjacency bit
//! vectors, stopping after a run of consecutive clustered-split aborts.
//!
//! Module map:
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`refenc`] | §3.1 | affinity graph, Chu–Liu/Edmonds arborescence, windowed reference selection, list codec |
//! | [`codec`] | — | per-list-class codec selection: ζ_k gaps, interval runs, copy blocks |
//! | [`par`] | — | deterministic work-pool layer the build pipeline parallelizes on |
//! | [`kmeans`] | §3.2 | k-means over supernode-adjacency bit vectors |
//! | [`partition`] | §3.2 | URL split, clustered split, iterative refinement loop |
//! | [`supergraph`] | §3.3 | supernode graph + Huffman encoding + pointer accounting |
//! | [`subgraphs`] | §2, §3.3 | intranode / positive / negative superedge graph codecs |
//! | [`disk`] | §3.3 | index files, linear ordering, PageID index, domain index |
//! | [`cache`] | §4.3 | memory-budgeted decoded-graph cache with load/unload instrumentation |
//! | [`build`] | §3 | end-to-end construction: refine → renumber → encode → write |
//! | [`repr`] | §4 | the queryable [`repr::SNode`] handle (disk-backed) and [`repr::SNodeInMemory`] (Table 2 access path) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod cache;
pub mod codec;
pub mod disk;
pub mod integrity;
pub mod kmeans;
pub mod par;
pub mod partition;
pub mod refenc;
pub mod repr;
pub mod shard;
pub mod subgraphs;
pub mod supergraph;
pub mod verify;

pub use build::{
    build_snode, build_snode_sharded, BuildStats, RepoInput, SNodeConfig, StageTimings,
};
pub use codec::{CodecConfig, ListCodec};
pub use disk::{Blob, Renumbering};
pub use integrity::{IntegrityCounters, IntegrityManifest, DIRECTORY_VERSION, SUMS_FILE};
pub use repr::{DegradedReport, SNode, SNodeInMemory};
pub use shard::{ShardInfo, ShardManifest, SHARDS_FILE};
pub use verify::{verify, VerifyReport};

/// Errors produced while building, writing, or reading an S-Node
/// representation.
#[derive(Debug)]
pub enum SNodeError {
    /// Bit-level decoding failure inside a stored graph.
    Bits(wg_bitio::BitError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Filesystem failure on a known file — carries the path so CLI
    /// diagnostics can name the missing or short file.
    FileIo {
        /// Path the failed operation targeted.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Structural inconsistency in the on-disk representation.
    Corrupt(&'static str),
}

impl SNodeError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn file_io(path: impl Into<std::path::PathBuf>, source: std::io::Error) -> Self {
        SNodeError::FileIo {
            path: path.into(),
            source,
        }
    }
}

impl std::fmt::Display for SNodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SNodeError::Bits(e) => write!(f, "bit-level decode error: {e}"),
            SNodeError::Io(e) => write!(f, "I/O error: {e}"),
            SNodeError::FileIo { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            SNodeError::Corrupt(w) => write!(f, "corrupt S-Node representation: {w}"),
        }
    }
}

impl std::error::Error for SNodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SNodeError::Bits(e) => Some(e),
            SNodeError::Io(e) => Some(e),
            SNodeError::FileIo { source, .. } => Some(source),
            SNodeError::Corrupt(_) => None,
        }
    }
}

impl From<wg_bitio::BitError> for SNodeError {
    fn from(e: wg_bitio::BitError) -> Self {
        SNodeError::Bits(e)
    }
}

impl From<std::io::Error> for SNodeError {
    fn from(e: std::io::Error) -> Self {
        SNodeError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SNodeError>;
