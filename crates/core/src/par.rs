//! Work-pool concurrency layer for the build pipeline.
//!
//! Construction cost is dominated by two embarrassingly-parallel stages —
//! per-supernode reference encoding (§5 of the paper's pipeline) and the
//! k-means distance loops behind clustered split (§3.2) — so this module
//! provides the one primitive both need: map a function over an index
//! space on a bounded pool of workers and return the results **in input
//! order**. Every helper here is deterministic by construction: scheduling
//! decides only *when* an item is computed, never *what* is computed or
//! where its result lands, so a build that consumes these results is
//! byte-identical across thread counts.
//!
//! Built on [`std::thread::scope`] (workers borrow the caller's data; no
//! `'static` bounds, no detached threads) plus [`parking_lot::Mutex`] for
//! result collection. Work is distributed dynamically through an atomic
//! cursor rather than pre-chunked ranges, so heavily skewed per-item costs
//! (one giant supernode among thousands of small ones) still balance.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves an effective worker count from a configured value.
///
/// `0` means "auto": the `WGR_THREADS` environment variable if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// Any explicit positive value wins over both.
pub fn resolve_threads(configured: u32) -> u32 {
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("WGR_THREADS") {
        if let Ok(n) = v.trim().parse::<u32>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get() as u32)
}

/// Maps `f` over `0..n` with up to `threads` workers, returning results in
/// index order.
///
/// With `threads <= 1` (or trivially small `n`) the map runs inline on the
/// caller's thread — no pool, no locks — which is also the reference
/// behaviour the parallel path must reproduce exactly.
///
/// # Panics
/// Propagates a panic from `f` (the scope re-raises it on join).
pub fn par_map<R, F>(threads: u32, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = (threads as usize).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    // Pool instrumentation is resolved once per job, not per item; the
    // disabled path pays a single bool load here and nothing in the loop.
    let obs = wg_obs::metrics_enabled().then(|| {
        let reg = wg_obs::global();
        reg.counter("core.par.jobs").inc();
        (
            reg.histogram("core.par.worker_busy_ns"),
            reg.histogram("core.par.collect_wait_ns"),
            reg.counter("core.par.items_claimed"),
        )
    });
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let busy = wg_obs::Stopwatch::start();
                // Claim one index at a time: items are coarse (a whole
                // supernode, a whole chunk) so cursor contention is noise,
                // and dynamic claiming is what absorbs size skew.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                if let Some((worker_busy, collect_wait, items)) = &obs {
                    worker_busy.record(busy.elapsed_ns());
                    items.add(local.len() as u64);
                    let wait = wg_obs::Stopwatch::start();
                    collected.lock().extend(local);
                    collect_wait.record(wait.elapsed_ns());
                } else {
                    collected.lock().extend(local);
                }
            });
        }
    });
    let mut collected = collected.into_inner();
    debug_assert_eq!(collected.len(), n);
    collected.sort_unstable_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Splits `0..n` into contiguous chunks of at least `min_chunk` items and
/// maps `f` over the chunks in parallel, returning per-chunk results in
/// chunk order.
///
/// This is the fine-grained counterpart to [`par_map`]: loops whose items
/// are too cheap to claim individually (a k-means distance evaluation, one
/// candidate-cost probe) amortise the scheduling over a chunk. Chunk
/// boundaries depend only on `n`, `min_chunk`, and `threads` — never on
/// scheduling — so reductions over the returned vector are deterministic.
pub fn par_chunks<R, F>(threads: u32, n: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    // Aim for a few chunks per worker so dynamic claiming can rebalance,
    // but never chunks smaller than the caller's floor.
    let target = (threads as usize).max(1) * 4;
    let chunk = min_chunk.max(n.div_ceil(target));
    let num_chunks = n.div_ceil(chunk);
    par_map(threads, num_chunks, |c| {
        let start = c * chunk;
        let end = (start + chunk).min(n);
        f(start..end)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1u32, 2, 4, 8] {
            let got = par_map(threads, 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_balances_skewed_items() {
        // One expensive item among cheap ones must not change results.
        let got = par_map(4, 50, |i| {
            if i == 3 {
                (0..200_000u64).sum::<u64>() + i as u64
            } else {
                i as u64
            }
        });
        assert_eq!(got[3], (0..200_000u64).sum::<u64>() + 3);
        assert_eq!(got[49], 49);
    }

    #[test]
    fn par_chunks_covers_exactly_once() {
        for threads in [1u32, 3, 7] {
            for n in [0usize, 1, 10, 97, 1000] {
                let chunks = par_chunks(threads, n, 8, |r| r.collect::<Vec<usize>>());
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "t={threads} n={n}");
            }
        }
    }

    #[test]
    fn resolve_threads_explicit_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn concurrent_counter_increments_from_pool() {
        // Obs counters must not lose increments under the work pool's
        // real concurrency (relaxed atomics are sufficient for counts).
        let c = wg_obs::Counter::new();
        let h = wg_obs::Histogram::new();
        par_map(8, 10_000, |i| {
            c.inc();
            h.record(i as u64);
        });
        assert_eq!(c.get(), 10_000);
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), (0..10_000u64).sum::<u64>());
    }
}
