//! Physical organisation of an S-Node representation (§3.3).
//!
//! The on-disk layout follows the paper:
//!
//! * the intranode and superedge graphs live in a sequence of **index
//!   files**, each capped at a configurable size (the paper used 500 MB),
//!   a graph never straddling a file boundary;
//! * graphs are laid out in the **linear ordering** that places every
//!   intranode graph immediately before the superedge graphs of its
//!   out-superedges, so a query touching `IntraNode_i` finds
//!   `SEdge_{i,*}` adjacent with minimal seeking;
//! * `meta.bin` holds the Huffman-encoded supernode graph, the per-graph
//!   pointers (file, offset, length — the "4-byte pointers" of Figure 10,
//!   widened here for file offsets), the **PageID index** (each supernode
//!   owns a contiguous page-id range, so the index is just the range
//!   starts), and the **domain index** (domain → supernodes);
//! * `pagemap.bin` records the renumbering from build-input page ids to
//!   S-Node page ids (old-of-new), kept separate because it is shared
//!   repository metadata, not part of the graph representation proper.

use crate::codec::CodecConfig;
use crate::supergraph::SupernodeGraph;
use crate::{Result, SNodeError};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

const META_MAGIC: u32 = 0x534E_4F44; // "SNOD"
/// Format version written by this build. Version 2 added the codec word
/// (one `u32` after the version) recording the per-list-class codec
/// choice; version-1 directories are still readable and decode with the
/// γ baseline, whose bit streams are identical to what they were built
/// with (ζ₁ = γ).
const META_VERSION: u32 = 2;
const PAGEMAP_MAGIC: u32 = 0x534E_504D; // "SNPM"

/// Reads the version + optional codec word; shared by full parse and the
/// supergraph-section reader so both accept the same set of versions.
fn read_version_and_codec(c: &mut Cursor<'_>) -> Result<CodecConfig> {
    match c.u32()? {
        1 => Ok(CodecConfig::GAMMA),
        2 => CodecConfig::from_header(c.u32()?),
        _ => Err(SNodeError::Corrupt("unsupported meta version")),
    }
}

/// Location of one encoded graph inside the index files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphLocator {
    /// Index file number (`index_NNN.bin`).
    pub file: u32,
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes.
    pub byte_len: u64,
    /// Exact bit length of the encoded graph.
    pub bit_len: u64,
}

/// Everything resident about an S-Node representation: the supernode graph
/// and both paper indexes.
#[derive(Debug, Clone)]
pub struct SNodeMeta {
    /// Total pages represented.
    pub num_pages: u32,
    /// PageID index: supernode `s` owns page ids
    /// `range_start[s] .. range_start[s + 1]`.
    pub range_start: Vec<u32>,
    /// The decoded supernode graph.
    pub supergraph: SupernodeGraph,
    /// Encoded size of the supernode graph in bits (for accounting).
    pub supergraph_bits: u64,
    /// Locator of each intranode graph.
    pub intranode_loc: Vec<GraphLocator>,
    /// Locators of each supernode's superedge graphs, parallel to
    /// `supergraph.adj[s]`.
    pub superedge_loc: Vec<Vec<GraphLocator>>,
    /// Domain index: `domain_supernodes[d]` = supernodes holding pages of
    /// domain `d` (ascending).
    pub domain_supernodes: Vec<Vec<u32>>,
    /// The per-list-class codec the directory's graphs were encoded with.
    /// Recorded in the header so every decode path uses the codec the
    /// builder chose; version-1 directories decode as the γ baseline.
    pub codec: CodecConfig,
    /// Index-file size cap the representation was written with. Locators
    /// are not stored explicitly: the linear ordering plus the per-graph
    /// sizes fully determine file numbers and offsets, so `meta.bin` only
    /// stores γ-coded graph sizes (the in-memory locator tables are
    /// reconstructed by replaying the writer's rotation rule at open).
    pub max_file_bytes: u64,
}

impl SNodeMeta {
    /// Number of supernodes.
    pub fn num_supernodes(&self) -> u32 {
        self.supergraph.num_supernodes()
    }

    /// Supernode owning page `p`.
    pub fn supernode_of(&self, p: u32) -> u32 {
        debug_assert!(p < self.num_pages);
        // partition_point returns the first start > p; its predecessor owns p.
        (self.range_start.partition_point(|&s| s <= p) - 1) as u32
    }

    /// Page-id range of supernode `s`.
    pub fn page_range(&self, s: u32) -> std::ops::Range<u32> {
        self.range_start[s as usize]..self.range_start[s as usize + 1]
    }

    /// Number of pages in supernode `s`.
    pub fn supernode_size(&self, s: u32) -> u32 {
        let r = self.page_range(s);
        r.end - r.start
    }

    /// Serialises to `dir/meta.bin`, returning the bytes written.
    pub fn write(&self, dir: &Path) -> Result<u64> {
        let mut out = Vec::new();
        put_u32(&mut out, META_MAGIC);
        put_u32(&mut out, META_VERSION);
        put_u32(&mut out, self.codec.to_header());
        put_u32(&mut out, self.num_pages);
        let n = self.num_supernodes();
        put_u32(&mut out, n);
        assert_eq!(self.range_start.len(), n as usize + 1);
        for &s in &self.range_start {
            put_u32(&mut out, s);
        }
        let (sg_bytes, sg_bits) = self.supergraph.encode();
        put_u64(&mut out, sg_bits);
        put_u64(&mut out, sg_bytes.len() as u64);
        out.extend_from_slice(&sg_bytes);
        put_u64(&mut out, self.max_file_bytes);
        // Per-graph sizes in linear order; everything else about a locator
        // is determined by the rotation rule.
        assert_eq!(self.intranode_loc.len(), n as usize);
        assert_eq!(self.superedge_loc.len(), n as usize);
        let mut sizes = wg_bitio::BitWriter::new();
        for s in 0..n as usize {
            assert_eq!(self.superedge_loc[s].len(), self.supergraph.adj[s].len());
            put_size(&mut sizes, &self.intranode_loc[s]);
            for loc in &self.superedge_loc[s] {
                put_size(&mut sizes, loc);
            }
        }
        let (size_bytes, size_bits) = sizes.finish();
        put_u64(&mut out, size_bits);
        put_u64(&mut out, size_bytes.len() as u64);
        out.extend_from_slice(&size_bytes);
        put_u32(&mut out, self.domain_supernodes.len() as u32);
        for list in &self.domain_supernodes {
            put_u32(&mut out, list.len() as u32);
            for &s in list {
                put_u32(&mut out, s);
            }
        }
        let path = dir.join("meta.bin");
        let mut f = File::create(path)?;
        f.write_all(&out)?;
        f.sync_data()?;
        Ok(out.len() as u64)
    }

    /// Reads only the serialised supernode-graph section of `dir/meta.bin`:
    /// the stored bytes and declared bit length. [`SNodeMeta::read`]
    /// re-derives the graph and discards the raw stream; audits need the
    /// stream itself to inspect the stored Huffman table and padding.
    pub fn read_supergraph_section(dir: &Path) -> Result<(Vec<u8>, u64)> {
        let buf = read_whole_file(&dir.join("meta.bin"))?;
        let mut c = Cursor::new(&buf);
        if c.u32()? != META_MAGIC {
            return Err(SNodeError::Corrupt(
                "bad meta magic before supergraph section",
            ));
        }
        let _codec = read_version_and_codec(&mut c)?;
        let _num_pages = c.u32()?;
        let n = c.u32()? as usize;
        for _ in 0..=n {
            c.u32()?;
        }
        let sg_bits = c.u64()?;
        let sg_len = c.u64()? as usize;
        let sg_bytes = c.bytes(sg_len)?;
        Ok((sg_bytes.to_vec(), sg_bits))
    }

    /// Deserialises from `dir/meta.bin`.
    pub fn read(dir: &Path) -> Result<Self> {
        let buf = read_whole_file(&dir.join("meta.bin"))?;
        Self::parse(&buf)
    }

    /// Deserialises from an in-memory `meta.bin` image (callers that
    /// checksum the raw bytes parse the same buffer they verified).
    pub fn parse(buf: &[u8]) -> Result<Self> {
        let mut c = Cursor::new(buf);
        if c.u32()? != META_MAGIC {
            return Err(SNodeError::Corrupt("bad meta magic"));
        }
        let codec = read_version_and_codec(&mut c)?;
        let num_pages = c.u32()?;
        let n = c.u32()? as usize;
        // Counts are untrusted until the reads below confirm them; clamp the
        // eager reservations (the vectors still grow on demand).
        let mut range_start = Vec::with_capacity((n + 1).min(1 << 20));
        for _ in 0..=n {
            range_start.push(c.u32()?);
        }
        if range_start.first() != Some(&0) || range_start.last() != Some(&num_pages) {
            return Err(SNodeError::Corrupt("page ranges do not tile 0..num_pages"));
        }
        if range_start.windows(2).any(|w| w[0] > w[1]) {
            return Err(SNodeError::Corrupt("page ranges not monotone"));
        }
        let sg_bits = c.u64()?;
        let sg_len = c.u64()? as usize;
        let sg_bytes = c.bytes(sg_len)?;
        if sg_bits > sg_bytes.len() as u64 * 8 {
            return Err(SNodeError::Corrupt("supergraph bit length exceeds payload"));
        }
        let supergraph = SupernodeGraph::decode(sg_bytes, sg_bits)?;
        if supergraph.num_supernodes() as usize != n {
            return Err(SNodeError::Corrupt("supergraph size mismatch"));
        }
        let max_file_bytes = c.u64()?;
        let size_bits = c.u64()?;
        let size_len = c.u64()? as usize;
        let size_bytes = c.bytes(size_len)?;
        if size_bits > size_bytes.len() as u64 * 8 {
            return Err(SNodeError::Corrupt("size table bit length exceeds payload"));
        }
        let mut sizes = wg_bitio::BitReader::with_bit_len(size_bytes, size_bits);
        // Replay the writer's rotation rule over the linear ordering.
        let mut layout = LocatorLayout::new(max_file_bytes);
        let mut intranode_loc = Vec::with_capacity(n);
        let mut superedge_loc = Vec::with_capacity(n);
        for s in 0..n {
            intranode_loc.push(layout.next(&mut sizes)?);
            let k = supergraph.adj[s].len();
            let mut locs = Vec::with_capacity(k);
            for _ in 0..k {
                locs.push(layout.next(&mut sizes)?);
            }
            superedge_loc.push(locs);
        }
        let nd = c.u32()? as usize;
        let mut domain_supernodes = Vec::with_capacity(nd.min(1 << 20));
        for _ in 0..nd {
            let k = c.u32()? as usize;
            let mut list = Vec::with_capacity(k.min(1 << 20));
            for _ in 0..k {
                list.push(c.u32()?);
            }
            domain_supernodes.push(list);
        }
        Ok(Self {
            num_pages,
            range_start,
            supergraph,
            supergraph_bits: sg_bits,
            intranode_loc,
            superedge_loc,
            domain_supernodes,
            codec,
            max_file_bytes,
        })
    }
}

/// Writes one graph's size as γ(byte_len) plus 3 bits of bit padding.
fn put_size(w: &mut wg_bitio::BitWriter, loc: &GraphLocator) {
    wg_bitio::codes::write_gamma(w, loc.byte_len);
    let pad = loc.byte_len * 8 - loc.bit_len;
    debug_assert!(pad < 8);
    w.write_bits(pad, 3);
}

/// Replays [`IndexFileWriter`]'s rotation rule to rebuild locators from
/// sizes alone.
struct LocatorLayout {
    max_bytes: u64,
    file: u32,
    used: u64,
    first: bool,
}

impl LocatorLayout {
    fn new(max_bytes: u64) -> Self {
        Self {
            max_bytes: max_bytes.max(1),
            file: 0,
            used: 0,
            first: true,
        }
    }

    fn next(&mut self, sizes: &mut wg_bitio::BitReader<'_>) -> Result<GraphLocator> {
        let byte_len = wg_bitio::codes::read_gamma(sizes)?;
        let pad = sizes.read_bits(3)?;
        if pad >= 8 || (byte_len == 0 && pad != 0) || byte_len * 8 < pad {
            return Err(SNodeError::Corrupt("invalid graph size entry"));
        }
        if !self.first && self.used > 0 && self.used + byte_len > self.max_bytes {
            self.file += 1;
            self.used = 0;
        }
        self.first = false;
        let loc = GraphLocator {
            file: self.file,
            offset: self.used,
            byte_len,
            bit_len: byte_len * 8 - pad,
        };
        self.used += byte_len;
        Ok(loc)
    }
}

/// The build-input → S-Node page-id renumbering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Renumbering {
    /// `new_of_old[o]` = S-Node id of input page `o`.
    pub new_of_old: Vec<u32>,
    /// `old_of_new[n]` = input id of S-Node page `n`.
    pub old_of_new: Vec<u32>,
}

impl Renumbering {
    /// Builds the inverse map from `old_of_new`.
    pub fn from_old_of_new(old_of_new: Vec<u32>) -> Self {
        let mut new_of_old = vec![0u32; old_of_new.len()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }
        Self {
            new_of_old,
            old_of_new,
        }
    }

    /// Writes `dir/pagemap.bin`.
    pub fn write(&self, dir: &Path) -> Result<()> {
        let mut out = Vec::with_capacity(8 + self.old_of_new.len() * 4);
        put_u32(&mut out, PAGEMAP_MAGIC);
        put_u32(&mut out, self.old_of_new.len() as u32);
        for &o in &self.old_of_new {
            put_u32(&mut out, o);
        }
        let mut f = File::create(dir.join("pagemap.bin"))?;
        f.write_all(&out)?;
        f.sync_data()?;
        Ok(())
    }

    /// Reads `dir/pagemap.bin`.
    pub fn read(dir: &Path) -> Result<Self> {
        let buf = read_whole_file(&dir.join("pagemap.bin"))?;
        let mut c = Cursor::new(&buf);
        if c.u32()? != PAGEMAP_MAGIC {
            return Err(SNodeError::Corrupt("bad pagemap magic"));
        }
        let n = c.u32()? as usize;
        let mut old_of_new = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let v = c.u32()?;
            if v as usize >= n {
                return Err(SNodeError::Corrupt("pagemap entry out of range"));
            }
            old_of_new.push(v);
        }
        Ok(Self::from_old_of_new(old_of_new))
    }
}

/// Append-side of the index files.
#[derive(Debug)]
pub struct IndexFileWriter {
    dir: PathBuf,
    max_bytes: u64,
    current: Option<File>,
    current_no: u32,
    current_used: u64,
    total_bytes: u64,
}

impl IndexFileWriter {
    /// Creates a writer emitting `dir/index_NNN.bin` files capped at
    /// `max_bytes` each (graphs larger than the cap get a file to
    /// themselves).
    pub fn create(dir: &Path, max_bytes: u64) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            max_bytes: max_bytes.max(1),
            current: None,
            current_no: 0,
            current_used: 0,
            total_bytes: 0,
        })
    }

    /// Appends one encoded graph, honouring the file-size cap, and returns
    /// where it landed.
    pub fn append(&mut self, bytes: &[u8], bit_len: u64) -> Result<GraphLocator> {
        let need = bytes.len() as u64;
        let must_rotate = match &self.current {
            None => true,
            Some(_) => self.current_used > 0 && self.current_used + need > self.max_bytes,
        };
        if must_rotate {
            if self.current.is_some() {
                self.current_no += 1;
            }
            let path = index_file_path(&self.dir, self.current_no);
            self.current = Some(File::create(path)?);
            self.current_used = 0;
        }
        let Some(f) = self.current.as_mut() else {
            // Rotation above guarantees an open file; fail cleanly if not.
            return Err(SNodeError::Corrupt("index file writer has no open file"));
        };
        f.write_all(bytes)?;
        let loc = GraphLocator {
            file: self.current_no,
            offset: self.current_used,
            byte_len: need,
            bit_len,
        };
        self.current_used += need;
        self.total_bytes += need;
        Ok(loc)
    }

    /// Total bytes written across all index files.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Flushes and closes the current file; returns `(total_bytes, files)`.
    pub fn finish(mut self) -> Result<(u64, u32)> {
        let files = if self.current.is_some() {
            self.current_no + 1
        } else {
            0
        };
        if let Some(f) = self.current.take() {
            f.sync_data()?;
        }
        Ok((self.total_bytes, files))
    }
}

/// Registry counters for index-file I/O, created only when metrics were
/// enabled at open time (`core.disk.*`). `pages_fetched` counts 8 KiB
/// pages spanned by each positioned read — the paper's disk-cost unit.
#[derive(Debug)]
struct DiskCounters {
    graph_reads: wg_obs::Counter,
    bytes_read: wg_obs::Counter,
    pages_fetched: wg_obs::Counter,
}

impl DiskCounters {
    fn auto() -> Option<Self> {
        if !wg_obs::metrics_enabled() {
            return None;
        }
        let reg = wg_obs::global();
        Some(Self {
            graph_reads: reg.counter("core.disk.graph_reads"),
            bytes_read: reg.counter("core.disk.bytes_read"),
            pages_fetched: reg.counter("core.disk.pages_fetched"),
        })
    }
}

/// 8 KiB pages spanned by the byte range `offset .. offset + len`.
fn pages_spanned(offset: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let page = wg_store::PAGE_SIZE as u64;
    (offset + len - 1) / page - offset / page + 1
}

/// Bytes of one encoded graph, either copied out of an index file or
/// borrowed from a resident [`wg_store::Region`]. Derefs to `[u8]`, so
/// every decode path is agnostic to which read mode produced it.
#[derive(Debug)]
pub enum Blob {
    /// A private copy (the default positioned-read path).
    Owned(Vec<u8>),
    /// A borrow of the shared resident image of an index file
    /// ([`IndexFileReader::open_resident`]); holding the blob keeps the
    /// image alive, copying nothing.
    Resident(wg_store::RegionSlice),
}

impl std::ops::Deref for Blob {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Blob::Owned(v) => v,
            Blob::Resident(s) => s,
        }
    }
}

impl AsRef<[u8]> for Blob {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Blob {
    fn from(v: Vec<u8>) -> Self {
        Blob::Owned(v)
    }
}

/// Read-side of the index files.
#[derive(Debug)]
pub struct IndexFileReader {
    files: Vec<File>,
    /// Stream ids (one per index file) for simulated-disk seek accounting.
    streams: Vec<u64>,
    /// Resident images of the index files (zero-copy mode); empty in the
    /// default positioned-read mode.
    resident: Vec<wg_store::Region>,
    /// Positioned reads performed (physical I/O instrumentation).
    /// Atomic (not `Cell`) so the reader stays `Sync` for shared-handle
    /// concurrent navigation.
    reads: std::sync::atomic::AtomicU64,
    counters: Option<DiskCounters>,
}

impl IndexFileReader {
    /// Opens every `index_NNN.bin` under `dir`.
    pub fn open(dir: &Path) -> Result<Self> {
        let mut files = Vec::new();
        loop {
            let path = index_file_path(dir, files.len() as u32);
            match File::open(&path) {
                Ok(f) => files.push(f),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                Err(e) => return Err(e.into()),
            }
        }
        if files.is_empty() {
            return Err(SNodeError::Corrupt("no index files found"));
        }
        let streams = files
            .iter()
            .map(|_| wg_store::diskmodel::new_stream())
            .collect();
        Ok(Self {
            files,
            streams,
            resident: Vec::new(),
            reads: std::sync::atomic::AtomicU64::new(0),
            counters: DiskCounters::auto(),
        })
    }

    /// Opens with every index file loaded into a shared immutable
    /// [`wg_store::Region`]: [`IndexFileReader::read_blob`] then hands out
    /// borrowing slices instead of copies. All instrumentation — the read
    /// counter, `core.disk.*` metrics, and simulated-disk charges — is
    /// identical to positioned-read mode, so query fingerprints and
    /// counter gates see the same numbers. The one behavioural difference
    /// is that fault injection's *per-read* failure sites disappear (the
    /// whole file is read once, through the retrying shim, at open),
    /// which is why resident mode is opt-in rather than the default.
    pub fn open_resident(dir: &Path) -> Result<Self> {
        let mut r = Self::open(dir)?;
        r.resident = (0..r.files.len() as u32)
            .map(|no| read_whole_file(&index_file_path(dir, no)).map(wg_store::Region::from_vec))
            .collect::<Result<_>>()?;
        Ok(r)
    }

    /// True when the index files are resident (zero-copy reads).
    pub fn is_resident(&self) -> bool {
        !self.resident.is_empty()
    }

    /// Bytes held resident by zero-copy mode (0 in positioned-read mode).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.iter().map(|r| r.len() as u64).sum()
    }

    /// Charges one graph read to every instrumentation layer. Both read
    /// paths go through here so their observable counts are identical.
    fn charge(&self, loc: &GraphLocator) {
        wg_store::diskmodel::charge_read(
            self.streams[loc.file as usize],
            loc.offset,
            loc.byte_len as usize,
        );
        self.reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(c) = &self.counters {
            c.graph_reads.inc();
            c.bytes_read.add(loc.byte_len);
            c.pages_fetched.add(pages_spanned(loc.offset, loc.byte_len));
        }
    }

    /// Reads the bytes of one graph.
    pub fn read(&self, loc: &GraphLocator) -> Result<Vec<u8>> {
        let Some(f) = self.files.get(loc.file as usize) else {
            return Err(SNodeError::Corrupt("locator names a missing file"));
        };
        let mut buf = vec![0u8; loc.byte_len as usize];
        wg_fault::read_exact_at(f, &mut buf, loc.offset)?;
        self.charge(loc);
        Ok(buf)
    }

    /// Reads one graph as a [`Blob`]: a borrowed slice of the resident
    /// image when in zero-copy mode, a private copy otherwise.
    pub fn read_blob(&self, loc: &GraphLocator) -> Result<Blob> {
        let Some(region) = self.resident.get(loc.file as usize) else {
            return self.read(loc).map(Blob::Owned);
        };
        let slice = region
            .slice(loc.offset as usize, loc.byte_len as usize)
            .ok_or(SNodeError::Corrupt("locator beyond resident index file"))?;
        self.charge(loc);
        Ok(Blob::Resident(slice))
    }

    /// Physical graph reads performed.
    pub fn read_count(&self) -> u64 {
        self.reads.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Path of index file `no` under `dir` (`index_000.bin`, `index_001.bin`, …).
pub fn index_file_path(dir: &Path, no: u32) -> PathBuf {
    dir.join(format!("index_{no:03}.bin"))
}

/// Reads an entire file through the canonical shim (retried, injectable),
/// naming the path on failure so CLI diagnostics can report which file of
/// a half-written directory is missing or unreadable.
pub(crate) fn read_whole_file(path: &Path) -> Result<Vec<u8>> {
    wg_fault::read_file(path).map_err(|e| SNodeError::file_io(path, e))
}

// --- Little-endian scribbling ----------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(SNodeError::Corrupt("meta file truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_snode_disk_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample_meta() -> SNodeMeta {
        let supergraph = SupernodeGraph {
            adj: vec![vec![1], vec![0, 2], vec![]],
        };
        let loc = |f, o| GraphLocator {
            file: f,
            offset: o,
            byte_len: 10,
            bit_len: 77,
        };
        // Linear order: intra0, se(0,→1), intra1, se(1,→0), se(1,→2),
        // intra2 — six 10-byte graphs under a 30-byte cap = two files.
        SNodeMeta {
            num_pages: 9,
            range_start: vec![0, 4, 7, 9],
            supergraph_bits: 0, // recomputed on write
            supergraph,
            intranode_loc: vec![loc(0, 0), loc(0, 20), loc(1, 20)],
            superedge_loc: vec![vec![loc(0, 10)], vec![loc(1, 0), loc(1, 10)], vec![]],
            domain_supernodes: vec![vec![0, 2], vec![1]],
            max_file_bytes: 30,
            codec: CodecConfig::GAMMA,
        }
    }

    #[test]
    fn meta_round_trips() {
        let dir = temp_dir("meta");
        let meta = sample_meta();
        meta.write(&dir).unwrap();
        let back = SNodeMeta::read(&dir).unwrap();
        assert_eq!(back.num_pages, 9);
        assert_eq!(back.range_start, meta.range_start);
        assert_eq!(back.supergraph, meta.supergraph);
        assert_eq!(back.intranode_loc, meta.intranode_loc);
        assert_eq!(back.superedge_loc, meta.superedge_loc);
        assert_eq!(back.domain_supernodes, meta.domain_supernodes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supernode_of_uses_page_ranges() {
        let meta = sample_meta();
        assert_eq!(meta.supernode_of(0), 0);
        assert_eq!(meta.supernode_of(3), 0);
        assert_eq!(meta.supernode_of(4), 1);
        assert_eq!(meta.supernode_of(6), 1);
        assert_eq!(meta.supernode_of(7), 2);
        assert_eq!(meta.supernode_of(8), 2);
        assert_eq!(meta.page_range(1), 4..7);
        assert_eq!(meta.supernode_size(0), 4);
    }

    #[test]
    fn corrupt_meta_is_rejected() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("meta.bin"), [1, 2, 3, 4, 5]).unwrap();
        assert!(SNodeMeta::read(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_meta_is_rejected() {
        let dir = temp_dir("trunc");
        let meta = sample_meta();
        meta.write(&dir).unwrap();
        let full = std::fs::read(dir.join("meta.bin")).unwrap();
        std::fs::write(dir.join("meta.bin"), &full[..full.len() / 2]).unwrap();
        assert!(SNodeMeta::read(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_files_rotate_at_cap() {
        let dir = temp_dir("rotate");
        let mut w = IndexFileWriter::create(&dir, 100).unwrap();
        let a = w.append(&[1u8; 60], 480).unwrap();
        let b = w.append(&[2u8; 60], 480).unwrap(); // would exceed 100 → new file
        let c = w.append(&[3u8; 200], 1600).unwrap(); // oversized → own file
        let d = w.append(&[4u8; 10], 80).unwrap();
        assert_eq!(a.file, 0);
        assert_eq!(b.file, 1);
        assert_eq!(c.file, 2);
        assert_eq!(d.file, 3, "file 2 is already over cap");
        let (total, files) = w.finish().unwrap();
        assert_eq!(total, 330);
        assert_eq!(files, 4);

        let r = IndexFileReader::open(&dir).unwrap();
        assert_eq!(r.read(&a).unwrap(), vec![1u8; 60]);
        assert_eq!(r.read(&b).unwrap(), vec![2u8; 60]);
        assert_eq!(r.read(&c).unwrap(), vec![3u8; 200]);
        assert_eq!(r.read(&d).unwrap(), vec![4u8; 10]);
        assert_eq!(r.read_count(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graphs_pack_within_cap() {
        let dir = temp_dir("pack");
        let mut w = IndexFileWriter::create(&dir, 1000).unwrap();
        let mut locs = Vec::new();
        for i in 0..10u8 {
            locs.push(w.append(&[i; 50], 400).unwrap());
        }
        assert!(locs.iter().all(|l| l.file == 0), "500 bytes fit one file");
        // Offsets are consecutive — the linear ordering is physical.
        for (i, l) in locs.iter().enumerate() {
            assert_eq!(l.offset, i as u64 * 50);
        }
        w.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renumbering_round_trips() {
        let dir = temp_dir("renum");
        let r = Renumbering::from_old_of_new(vec![3, 0, 2, 1]);
        assert_eq!(r.new_of_old, vec![1, 3, 2, 0]);
        r.write(&dir).unwrap();
        let back = Renumbering::read(&dir).unwrap();
        assert_eq!(back, r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pages_spanned_counts_crossings() {
        let p = wg_store::PAGE_SIZE as u64;
        assert_eq!(pages_spanned(0, 0), 0);
        assert_eq!(pages_spanned(0, 1), 1);
        assert_eq!(pages_spanned(0, p), 1);
        assert_eq!(pages_spanned(0, p + 1), 2);
        assert_eq!(pages_spanned(p - 1, 2), 2);
        assert_eq!(pages_spanned(p, p), 1);
        assert_eq!(pages_spanned(3, 3 * p), 4);
    }

    #[test]
    fn resident_reads_borrow_and_charge_identically() {
        let dir = temp_dir("resident");
        let mut w = IndexFileWriter::create(&dir, 100).unwrap();
        let a = w.append(&[1u8; 60], 480).unwrap();
        let b = w.append(&[2u8; 60], 480).unwrap();
        w.finish().unwrap();

        let plain = IndexFileReader::open(&dir).unwrap();
        let res = IndexFileReader::open_resident(&dir).unwrap();
        assert!(!plain.is_resident());
        assert!(res.is_resident());
        assert_eq!(res.resident_bytes(), 120);

        for loc in [&a, &b] {
            let copied = plain.read_blob(loc).unwrap();
            let borrowed = res.read_blob(loc).unwrap();
            assert!(matches!(copied, Blob::Owned(_)));
            assert!(matches!(borrowed, Blob::Resident(_)));
            assert_eq!(&*copied, &*borrowed);
        }
        // Identical instrumentation on both paths.
        assert_eq!(plain.read_count(), res.read_count());

        // Two resident reads of the same graph share backing memory.
        let x = res.read_blob(&a).unwrap();
        let y = res.read_blob(&a).unwrap();
        assert!(std::ptr::eq(x.as_ptr(), y.as_ptr()), "no copy per read");

        // A locator beyond the file is a structured error, not a panic.
        let bogus = GraphLocator {
            file: 0,
            offset: 50,
            byte_len: 100,
            bit_len: 800,
        };
        assert!(res.read_blob(&bogus).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_index_files_error() {
        let dir = temp_dir("missing");
        assert!(IndexFileReader::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
