//! Domain sharding for the out-of-core build.
//!
//! The sharded builder ([`crate::build::build_snode_sharded`]) splits the
//! *work*, never the *result*: shards are contiguous domain-id ranges
//! balanced by page count, each shard remaps and encodes only the
//! supernodes whose domain falls in its range, and the stitch phase
//! concatenates every shard's blobs back into the single global supernode
//! order — so the directory it writes is byte-identical to the in-memory
//! builder's (`shards.bin` aside). This module holds the plan (which
//! domain goes where) and the manifest persisted as `shards.bin`,
//! checksummed by `sums.bin` like every other section.
//!
//! Domains — not supernodes — are the sharding unit because partition
//! refinement keeps every element domain-pure (§3.1, Property 2): a
//! domain's supernodes never straddle shards, which is what lets one
//! shard own a supernode's entire remap/encode work.

use crate::disk::read_whole_file;
use crate::{Result, SNodeError};
use std::io::Write;
use std::path::Path;

/// File name of the shard manifest inside an S-Node directory.
pub const SHARDS_FILE: &str = "shards.bin";

const SHARDS_MAGIC: &[u8; 4] = b"SNSH";
const SHARDS_VERSION: u32 = 1;

/// One shard of the build plan: a contiguous domain-id range plus the
/// work accounting filled in as the build runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardInfo {
    /// First domain id owned by this shard.
    pub domain_start: u32,
    /// One past the last domain id owned by this shard.
    pub domain_end: u32,
    /// Pages whose domain falls in the range.
    pub pages: u32,
    /// Supernodes encoded by this shard.
    pub supernodes: u32,
    /// Blobs (intranode + superedge) this shard produced.
    pub blobs: u64,
    /// Encoded payload bytes this shard produced.
    pub encoded_bytes: u64,
}

/// The persisted shard plan: how the build's work was partitioned.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardManifest {
    /// Per-shard domain ranges and work accounting.
    pub shards: Vec<ShardInfo>,
}

impl ShardManifest {
    /// Plans `num_shards` contiguous domain ranges over `domains` (the
    /// per-page domain ids), greedily balanced by page count. Shards never
    /// split a domain; fewer shards come back when there are fewer
    /// non-empty domains than requested.
    pub fn plan(domains: &[u32], num_shards: u32) -> ShardManifest {
        let num_domains = domains.iter().copied().max().map_or(0, |d| d + 1);
        let mut domain_pages = vec![0u64; num_domains as usize];
        for &d in domains {
            domain_pages[d as usize] += 1;
        }
        let total = domains.len() as u64;
        let want = num_shards.max(1);
        let mut shards = Vec::with_capacity(want as usize);
        let mut start = 0u32;
        let mut acc = 0u64;
        let mut pages_left = total;
        for d in 0..num_domains {
            acc += domain_pages[d as usize];
            let shards_left = u64::from(want) - shards.len() as u64;
            // Close the shard once it reaches an equal share of the pages
            // still unassigned — while leaving at least one domain per
            // remaining shard.
            let fair = pages_left.div_ceil(shards_left.max(1));
            let domains_left = num_domains - d - 1;
            if (acc >= fair || u64::from(domains_left) < shards_left) && shards_left > 1 {
                shards.push(ShardInfo {
                    domain_start: start,
                    domain_end: d + 1,
                    pages: acc as u32,
                    ..Default::default()
                });
                pages_left -= acc;
                start = d + 1;
                acc = 0;
            }
        }
        if start < num_domains || shards.is_empty() {
            shards.push(ShardInfo {
                domain_start: start,
                domain_end: num_domains,
                pages: acc as u32,
                ..Default::default()
            });
        }
        ShardManifest { shards }
    }

    /// Shard owning domain `d`, by binary search over the ranges.
    pub fn shard_of_domain(&self, d: u32) -> u32 {
        (self
            .shards
            .partition_point(|s| s.domain_end <= d)
            .min(self.shards.len().saturating_sub(1))) as u32
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the plan is empty (no shards).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Serialises into `dir/shards.bin`; returns bytes written.
    pub fn write(&self, dir: &Path) -> Result<u64> {
        let mut buf = Vec::with_capacity(16 + self.shards.len() * 32);
        buf.extend_from_slice(SHARDS_MAGIC);
        buf.extend_from_slice(&SHARDS_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for s in &self.shards {
            buf.extend_from_slice(&s.domain_start.to_le_bytes());
            buf.extend_from_slice(&s.domain_end.to_le_bytes());
            buf.extend_from_slice(&s.pages.to_le_bytes());
            buf.extend_from_slice(&s.supernodes.to_le_bytes());
            buf.extend_from_slice(&s.blobs.to_le_bytes());
            buf.extend_from_slice(&s.encoded_bytes.to_le_bytes());
        }
        let mut f = std::fs::File::create(dir.join(SHARDS_FILE))?;
        f.write_all(&buf)?;
        f.sync_data()?;
        Ok(buf.len() as u64)
    }

    /// Reads `dir/shards.bin`. `Ok(None)` when the directory was built
    /// unsharded (no manifest present).
    pub fn read(dir: &Path) -> Result<Option<ShardManifest>> {
        let path = dir.join(SHARDS_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let bytes = read_whole_file(&path)?;
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = bytes
                .get(*pos..*pos + n)
                .ok_or(SNodeError::Corrupt("shards.bin truncated"))?;
            *pos += n;
            Ok(s)
        };
        let u32_at = |s: &[u8]| {
            let mut a = [0u8; 4];
            a.copy_from_slice(s);
            u32::from_le_bytes(a)
        };
        let u64_at = |s: &[u8]| {
            let mut a = [0u8; 8];
            a.copy_from_slice(s);
            u64::from_le_bytes(a)
        };
        if take(&mut pos, 4)? != SHARDS_MAGIC {
            return Err(SNodeError::Corrupt("bad shards.bin magic"));
        }
        if u32_at(take(&mut pos, 4)?) != SHARDS_VERSION {
            return Err(SNodeError::Corrupt("unsupported shards.bin version"));
        }
        let count = u32_at(take(&mut pos, 4)?) as usize;
        // A damaged count must not drive allocation (SN213): the record
        // size bounds it from the file length.
        if count > bytes.len() / 32 {
            return Err(SNodeError::Corrupt("shards.bin count exceeds file size"));
        }
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            shards.push(ShardInfo {
                domain_start: u32_at(take(&mut pos, 4)?),
                domain_end: u32_at(take(&mut pos, 4)?),
                pages: u32_at(take(&mut pos, 4)?),
                supernodes: u32_at(take(&mut pos, 4)?),
                blobs: u64_at(take(&mut pos, 8)?),
                encoded_bytes: u64_at(take(&mut pos, 8)?),
            });
        }
        if pos != bytes.len() {
            return Err(SNodeError::Corrupt("shards.bin has trailing bytes"));
        }
        Ok(Some(ShardManifest { shards }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_domain_once() {
        let domains: Vec<u32> = (0..1000u32).map(|i| i % 17).collect();
        for n in [1u32, 2, 3, 8, 17, 40] {
            let plan = ShardManifest::plan(&domains, n);
            assert!(!plan.is_empty());
            assert!(plan.len() <= 17, "never more shards than domains");
            assert_eq!(plan.shards[0].domain_start, 0);
            assert_eq!(plan.shards.last().unwrap().domain_end, 17);
            for w in plan.shards.windows(2) {
                assert_eq!(w[0].domain_end, w[1].domain_start, "contiguous");
                assert!(w[0].domain_start < w[0].domain_end, "non-empty range");
            }
            let pages: u64 = plan.shards.iter().map(|s| u64::from(s.pages)).sum();
            assert_eq!(pages, domains.len() as u64);
            for d in 0..17 {
                let k = plan.shard_of_domain(d);
                let s = plan.shards[k as usize];
                assert!(s.domain_start <= d && d < s.domain_end);
            }
        }
    }

    #[test]
    fn plan_balances_skewed_domains() {
        // Zipf-ish: domain 0 owns half the pages.
        let mut domains = vec![0u32; 500];
        for d in 1..=100u32 {
            domains.extend(std::iter::repeat_n(d, 5));
        }
        let plan = ShardManifest::plan(&domains, 4);
        assert_eq!(plan.len(), 4);
        // The giant domain is alone-ish in its shard; the rest spread out.
        let max = plan.shards.iter().map(|s| s.pages).max().unwrap();
        assert!(max <= 520, "no shard should take much more than the giant");
    }

    #[test]
    fn manifest_round_trips() {
        let dir = std::env::temp_dir().join(format!("wg_shardman_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = ShardManifest::plan(&[0, 0, 1, 2, 2, 2], 2);
        for (i, s) in m.shards.iter_mut().enumerate() {
            s.supernodes = i as u32 + 1;
            s.blobs = 10 * (i as u64 + 1);
            s.encoded_bytes = 1000 * (i as u64 + 1);
        }
        m.write(&dir).unwrap();
        let back = ShardManifest::read(&dir).unwrap().unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_manifest_reads_as_none() {
        let dir = std::env::temp_dir().join(format!("wg_shardnone_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ShardManifest::read(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_manifest_is_corrupt_not_panic() {
        let dir = std::env::temp_dir().join(format!("wg_shardbad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for bytes in [
            &b"XXXX"[..],
            &b"SNSH\x02\x00\x00\x00\x00\x00\x00\x00"[..],
            &b"SNSH\x01\x00\x00\x00\xff\xff\xff\xff"[..],
            &b"SNSH\x01\x00\x00\x00\x01\x00\x00\x00\x01\x02"[..],
        ] {
            std::fs::write(dir.join(SHARDS_FILE), bytes).unwrap();
            assert!(ShardManifest::read(&dir).is_err(), "bytes {bytes:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_input_plans_one_empty_shard() {
        let plan = ShardManifest::plan(&[], 4);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.shards[0].pages, 0);
    }
}
