//! End-to-end S-Node construction (§3): refine the partition, renumber
//! pages, encode every graph, and lay the representation out on disk.

use crate::codec::CodecConfig;
#[cfg(test)]
use crate::codec::ListCodec;
use crate::disk::{GraphLocator, IndexFileWriter, Renumbering, SNodeMeta};
use crate::partition::{refine, Partition, RefineConfig, RefineStats};
use crate::refenc::{EncodedLists, RefMode};
use crate::subgraphs::{
    encode_intranode_t, encode_superedge_t, EncodedSuperedge, SuperedgeKind, SuperedgePolicy,
};
use crate::supergraph::SupernodeGraph;
use crate::Result;
use std::collections::HashMap;
use std::path::Path;
use wg_graph::Graph;
use wg_obs::{record_span, Stopwatch};

/// The repository slice the builder consumes.
#[derive(Debug, Clone, Copy)]
pub struct RepoInput<'a> {
    /// Full URL per page (drives URL split and page ordering). Borrowed
    /// string slices: callers keep ownership and no URL text is cloned
    /// anywhere on the build path.
    pub urls: &'a [&'a str],
    /// Domain id per page (drives `P0` and the domain index).
    pub domains: &'a [u32],
    /// The Web graph.
    pub graph: &'a Graph,
}

/// Build-time configuration.
#[derive(Debug, Clone, Copy)]
pub struct SNodeConfig {
    /// Partition-refinement parameters.
    pub refine: RefineConfig,
    /// Reference-selection mode for intranode/superedge compression.
    pub ref_mode: RefMode,
    /// Positive/negative superedge selection policy.
    pub superedge_policy: SuperedgePolicy,
    /// Per-list-class codec choice (γ baseline by default; the ablation
    /// harness sweeps ζ_k / intervals / copy blocks). Recorded in the
    /// `meta.bin` header so readers decode with the same codec.
    pub codec: CodecConfig,
    /// Index-file size cap (paper: 500 MB).
    pub max_file_bytes: u64,
    /// Worker threads for the encode pipeline and k-means loops.
    ///
    /// `0` (the default) resolves at build time via
    /// [`crate::par::resolve_threads`]: the `WGR_THREADS` environment
    /// variable if set, otherwise the machine's available parallelism.
    /// The representation produced is byte-identical for every value.
    pub threads: u32,
}

impl Default for SNodeConfig {
    fn default() -> Self {
        Self {
            refine: RefineConfig::default(),
            ref_mode: RefMode::default(),
            superedge_policy: SuperedgePolicy::default(),
            codec: CodecConfig::GAMMA,
            max_file_bytes: 500 << 20,
            threads: 0,
        }
    }
}

/// Wall-clock breakdown of one build, by pipeline stage.
///
/// Timings are measurements, not outputs: they vary run to run and carry
/// no information about the representation, which is byte-identical
/// across thread counts. Determinism tests must compare the rest of
/// [`BuildStats`], never this.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Worker threads the build resolved to (after `WGR_THREADS` / auto).
    pub threads: u32,
    /// Partition refinement (§3.2), including k-means.
    pub refine_secs: f64,
    /// Page renumbering, graph remap, and supernode-graph derivation.
    pub remap_secs: f64,
    /// Intranode/superedge graph encoding (the parallel stage).
    pub encode_secs: f64,
    /// Serial index-file writing plus metadata output.
    pub write_secs: f64,
    /// Whole build, end to end.
    pub total_secs: f64,
}

/// Everything the builder measured, for the scalability and compression
/// experiments.
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// Partition-refinement statistics.
    pub refine: RefineStats,
    /// Final number of supernodes (Figure 9a).
    pub num_supernodes: u32,
    /// Final number of superedges (Figure 9b).
    pub num_superedges: u64,
    /// Huffman-encoded supernode-graph size including 4-byte pointers per
    /// vertex and edge (Figure 10's accounting).
    pub supernode_graph_bytes_with_pointers: u64,
    /// Encoded supernode-graph adjacency alone, in bits.
    pub supernode_graph_bits: u64,
    /// Total bits across all intranode graphs.
    pub intranode_bits: u64,
    /// Total bits across all superedge graphs.
    pub superedge_bits: u64,
    /// Bytes of `meta.bin` (supernode graph + pointers + both indexes).
    pub meta_bytes: u64,
    /// Bytes across all index files.
    pub index_bytes: u64,
    /// Bytes of the `sums.bin` integrity manifest. Deliberately excluded
    /// from [`BuildStats::total_bits`]: checksums are operational armour,
    /// not part of the representation the paper's Table 1 measures, and
    /// the committed benchmark baselines predate them.
    pub checksum_bytes: u64,
    /// Superedges stored positive.
    pub positive_superedges: u64,
    /// Superedges stored negative.
    pub negative_superedges: u64,
    /// Edges in the input graph.
    pub num_edges: u64,
    /// Per-stage wall-clock breakdown (not part of the representation;
    /// varies run to run).
    pub timings: StageTimings,
}

impl BuildStats {
    /// Total representation size in bits: encoded supernode graph, pointer
    /// tables, PageID index, domain index, and every intranode/superedge
    /// graph — i.e. `meta.bin` plus the index files, the same accounting
    /// the paper's Table 1 uses ("total space used by the graph
    /// representation").
    pub fn total_bits(&self) -> u64 {
        (self.meta_bytes + self.index_bytes) * 8
    }

    /// Bits per edge (Table 1's metric).
    pub fn bits_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.total_bits() as f64 / self.num_edges as f64
        }
    }
}

/// Builds the complete S-Node representation of `input` under `dir`.
///
/// Returns the build statistics and the page renumbering (input ids →
/// S-Node ids). The renumbering is also persisted as `pagemap.bin`.
pub fn build_snode(
    input: RepoInput<'_>,
    config: &SNodeConfig,
    dir: &Path,
) -> Result<(BuildStats, Renumbering)> {
    std::fs::create_dir_all(dir)?;
    let n_pages = input.graph.num_nodes();
    assert_eq!(input.urls.len(), n_pages as usize);
    assert_eq!(input.domains.len(), n_pages as usize);
    let threads = crate::par::resolve_threads(config.threads);
    let t_build = Stopwatch::start();

    // 1. Iterative partition refinement (§3.2). The thread count flows
    //    into the k-means distance loops; refinement decisions are
    //    unaffected (see `RefineConfig::threads`).
    let refine_config = RefineConfig {
        threads,
        ..config.refine
    };
    let t = Stopwatch::start();
    let (partition, refine_stats) = refine(input.urls, input.domains, input.graph, &refine_config);
    record_span("core.build.refine", "build", &t);
    let refine_secs = t.elapsed().as_secs_f64();

    // 2. Page numbering (§3.3): supernodes numbered 1..n in element order;
    //    pages ordered by (supernode, lexicographic URL).
    let t = Stopwatch::start();
    let renumbering = number_pages(&partition, input.urls);
    let range_start = compute_ranges(&partition);

    // 3. Remap the graph into new ids, bucketed per supernode.
    let remapped = remap(&partition, input.graph, &renumbering, &range_start);

    // 4. Supernode graph.
    let supergraph = supergraph_from_buckets(&remapped);
    record_span("core.build.remap", "build", &t);
    let remap_secs = t.elapsed().as_secs_f64();

    // 5a. Encode every graph, in parallel across supernodes. Results come
    //     back in supernode order, so the write phase below lays them out
    //     exactly as the serial pipeline did. With fewer supernodes than
    //     the pool can use, parallelism is pushed down into the per-graph
    //     encoders instead (never both: nested pools would oversubscribe).
    let t = Stopwatch::start();
    let n_super = partition.len();
    let inner_threads = if n_super >= threads as usize * 2 {
        1
    } else {
        threads
    };
    let outer_threads = if inner_threads > 1 { 1 } else { threads };
    let encoded: Vec<(EncodedLists, Vec<EncodedSuperedge>)> =
        crate::par::par_map(outer_threads, n_super, |s| {
            let intra = encode_intranode_t(
                &remapped.intra[s],
                config.ref_mode,
                config.codec.intra,
                inner_threads,
            );
            let edges: Vec<EncodedSuperedge> = supergraph.adj[s]
                .iter()
                .map(|&j| {
                    let lists = remapped
                        .superedges
                        .get(&(s as u32, j))
                        .expect("superedge bucket exists");
                    let nj = u64::from(range_start[j as usize + 1] - range_start[j as usize]);
                    encode_superedge_t(
                        lists,
                        nj,
                        config.ref_mode,
                        config.superedge_policy,
                        config.codec.superedge,
                        inner_threads,
                    )
                })
                .collect();
            (intra, edges)
        });
    record_span("core.build.encode", "build", &t);
    let encode_secs = t.elapsed().as_secs_f64();

    // 5b. Write the index files serially in linear order: IntraNode_i,
    //     then SEdge_{i, j} for each j in superedge order.
    let t = Stopwatch::start();
    let mut writer = IndexFileWriter::create(dir, config.max_file_bytes)?;
    let mut intranode_loc = Vec::with_capacity(n_super);
    let mut superedge_loc: Vec<Vec<GraphLocator>> = Vec::with_capacity(n_super);
    let mut intranode_bits = 0u64;
    let mut superedge_bits = 0u64;
    let mut positive_superedges = 0u64;
    let mut negative_superedges = 0u64;
    // Per-blob CRCs for the integrity manifest, collected in the same
    // linear order the blobs hit the disk in.
    let mut blob_crc = Vec::new();
    for (intra, edges) in &encoded {
        intranode_bits += intra.bit_len;
        blob_crc.push(wg_fault::crc32c(&intra.bytes));
        intranode_loc.push(writer.append(&intra.bytes, intra.bit_len)?);

        let mut locs = Vec::with_capacity(edges.len());
        for enc in edges {
            superedge_bits += enc.bit_len;
            match enc.kind {
                SuperedgeKind::Positive => positive_superedges += 1,
                SuperedgeKind::Negative => negative_superedges += 1,
            }
            blob_crc.push(wg_fault::crc32c(&enc.bytes));
            locs.push(writer.append(&enc.bytes, enc.bit_len)?);
        }
        superedge_loc.push(locs);
    }
    drop(encoded);
    let (index_bytes, _files) = writer.finish()?;

    // 6. Meta: supernode graph + pointers + PageID index + domain index.
    let num_domains = input.domains.iter().copied().max().map_or(0, |d| d + 1);
    let mut domain_supernodes: Vec<Vec<u32>> = vec![Vec::new(); num_domains as usize];
    for (s, e) in partition.elements.iter().enumerate() {
        domain_supernodes[e.domain as usize].push(s as u32);
    }
    let supergraph_bits = supergraph.encoded_bits();
    let meta = SNodeMeta {
        num_pages: n_pages,
        range_start: range_start.clone(),
        supergraph_bits,
        supergraph,
        intranode_loc,
        superedge_loc,
        domain_supernodes,
        codec: config.codec,
        max_file_bytes: config.max_file_bytes,
    };
    let meta_bytes = meta.write(dir)?;
    renumbering.write(dir)?;
    // Sidecar integrity manifest, last: it checksums every file above.
    let checksum_bytes = crate::integrity::IntegrityManifest::compute(dir, blob_crc)?.write(dir)?;
    record_span("core.build.write", "build", &t);
    let write_secs = t.elapsed().as_secs_f64();

    record_span("core.build.total", "build", &t_build);
    // `StageTimings` is a *view* of the same stopwatches the spans above
    // record — one measurement, two renderings, never parallel bookkeeping.
    let timings = StageTimings {
        threads,
        refine_secs,
        remap_secs,
        encode_secs,
        write_secs,
        total_secs: t_build.elapsed().as_secs_f64(),
    };
    let stats = BuildStats {
        refine: refine_stats,
        num_supernodes: meta.num_supernodes(),
        num_superedges: meta.supergraph.num_superedges(),
        supernode_graph_bytes_with_pointers: meta.supergraph.encoded_bytes_with_pointers(),
        supernode_graph_bits: supergraph_bits,
        intranode_bits,
        superedge_bits,
        meta_bytes,
        index_bytes,
        checksum_bytes,
        positive_superedges,
        negative_superedges,
        num_edges: input.graph.num_edges(),
        timings,
    };
    Ok((stats, renumbering))
}

/// Builds the same S-Node representation as [`build_snode`] while bounding
/// peak memory: the graph remap and the encoded blobs — the two stages
/// whose footprint grows with the corpus — are processed one domain shard
/// at a time, with each shard's blobs spilled to a scratch file and
/// stitched back into the global supernode order at the end.
///
/// The output directory is byte-identical to `build_snode`'s for every
/// file except the extra `shards.bin` manifest (and therefore `sums.bin`,
/// which covers it): partition refinement, page renumbering, and the
/// supernode graph are still computed globally, shards only split the
/// encode work, and the per-graph encoders are representation-invariant
/// across thread counts. `num_shards` is a work-splitting hint; the
/// planner never splits a domain, so fewer shards come back when the
/// corpus has fewer domains (see [`crate::shard::ShardManifest::plan`]).
pub fn build_snode_sharded(
    input: RepoInput<'_>,
    config: &SNodeConfig,
    dir: &Path,
    num_shards: u32,
) -> Result<(BuildStats, Renumbering)> {
    use crate::shard::ShardManifest;
    use std::io::{BufWriter, Write as _};

    std::fs::create_dir_all(dir)?;
    let n_pages = input.graph.num_nodes();
    assert_eq!(input.urls.len(), n_pages as usize);
    assert_eq!(input.domains.len(), n_pages as usize);
    let threads = crate::par::resolve_threads(config.threads);
    let t_build = Stopwatch::start();

    // 1. Refinement is global and unchanged: the partition — and with it
    //    the renumbering and the supernode graph — must not depend on the
    //    shard count, or the representation would stop being canonical.
    let refine_config = RefineConfig {
        threads,
        ..config.refine
    };
    let t = Stopwatch::start();
    let (partition, refine_stats) = refine(input.urls, input.domains, input.graph, &refine_config);
    record_span("core.build.refine", "build", &t);
    let refine_secs = t.elapsed().as_secs_f64();

    // 2. Global renumbering + supernode graph. The supernode graph comes
    //    from a dedicated edge pass here (not from remap buckets as in the
    //    in-memory builder): a set of (i, j) pairs is corpus-scale cheap,
    //    while the per-superedge list buckets are exactly what sharding
    //    exists to avoid materialising all at once.
    let t = Stopwatch::start();
    let renumbering = number_pages(&partition, input.urls);
    let range_start = compute_ranges(&partition);
    let n_super = partition.len();
    let super_of =
        |new_id: u32| -> u32 { (range_start.partition_point(|&st| st <= new_id) - 1) as u32 };
    let supergraph = {
        let mut pairs: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for new_src in 0..n_pages {
            let old_src = renumbering.old_of_new[new_src as usize];
            let s = super_of(new_src);
            for &old_tgt in input.graph.neighbors(old_src) {
                let j = super_of(renumbering.new_of_old[old_tgt as usize]);
                if j != s {
                    pairs.insert((s, j));
                }
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_super];
        for (i, j) in pairs {
            adj[i as usize].push(j);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        SupernodeGraph { adj }
    };

    // Plan shards over domains and map each supernode to its shard.
    // Refinement keeps elements domain-pure, so the domain id of an
    // element places the whole supernode.
    let mut plan = ShardManifest::plan(input.domains, num_shards);
    let shard_of_super: Vec<u32> = partition
        .elements
        .iter()
        .map(|e| plan.shard_of_domain(e.domain))
        .collect();
    let mut shard_supers: Vec<Vec<u32>> = vec![Vec::new(); plan.len()];
    for (s, &k) in shard_of_super.iter().enumerate() {
        shard_supers[k as usize].push(s as u32);
    }
    record_span("core.build.remap", "build", &t);
    let remap_secs = t.elapsed().as_secs_f64();

    // 3. Per shard: remap only this shard's sources, encode, spill the
    //    blobs to a scratch file. Peak memory is one shard's buckets plus
    //    one shard's encoded blobs instead of the whole corpus's.
    //    Spill record: [u64 bit_len][u32 byte_len][bytes].
    let t = Stopwatch::start();
    let spill_dir = dir.join("spill");
    std::fs::create_dir_all(&spill_dir)?;
    let mut intranode_bits = 0u64;
    let mut superedge_bits = 0u64;
    let mut positive_superedges = 0u64;
    let mut negative_superedges = 0u64;
    for (k, supers) in shard_supers.iter().enumerate() {
        // Partial remap: buckets exist only for this shard's supernodes.
        // `sedges[m][a]` pairs with `supergraph.adj[s][a]` (both sorted by
        // target supernode), so the encode loop below needs no hash map.
        let mut intra: Vec<Vec<Vec<u32>>> = supers
            .iter()
            .map(|&s| {
                vec![Vec::new(); (range_start[s as usize + 1] - range_start[s as usize]) as usize]
            })
            .collect();
        let mut sedges: Vec<Vec<Vec<Vec<u32>>>> = supers
            .iter()
            .map(|&s| {
                let ni = (range_start[s as usize + 1] - range_start[s as usize]) as usize;
                supergraph.adj[s as usize]
                    .iter()
                    .map(|_| vec![Vec::new(); ni])
                    .collect()
            })
            .collect();
        for (m, &s) in supers.iter().enumerate() {
            for new_src in range_start[s as usize]..range_start[s as usize + 1] {
                let old_src = renumbering.old_of_new[new_src as usize];
                let local_src = (new_src - range_start[s as usize]) as usize;
                for &old_tgt in input.graph.neighbors(old_src) {
                    let new_tgt = renumbering.new_of_old[old_tgt as usize];
                    let j = super_of(new_tgt);
                    let local_tgt = new_tgt - range_start[j as usize];
                    if j == s {
                        intra[m][local_src].push(local_tgt);
                    } else {
                        let a = supergraph.adj[s as usize]
                            .binary_search(&j)
                            .expect("superedge present in supernode graph");
                        sedges[m][a][local_src].push(local_tgt);
                    }
                }
            }
        }
        for lists in &mut intra {
            for l in lists {
                l.sort_unstable();
                l.dedup();
            }
        }
        for per_super in &mut sedges {
            for lists in per_super {
                for l in lists {
                    l.sort_unstable();
                    l.dedup();
                }
            }
        }

        // Encode this shard's supernodes with the same outer/inner thread
        // split as the in-memory builder; the encoders are
        // representation-invariant across thread counts, so the split only
        // affects wall clock.
        let inner_threads = if supers.len() >= threads as usize * 2 {
            1
        } else {
            threads
        };
        let outer_threads = if inner_threads > 1 { 1 } else { threads };
        let encoded: Vec<(EncodedLists, Vec<EncodedSuperedge>)> =
            crate::par::par_map(outer_threads, supers.len(), |m| {
                let s = supers[m] as usize;
                let enc_intra = encode_intranode_t(
                    &intra[m],
                    config.ref_mode,
                    config.codec.intra,
                    inner_threads,
                );
                let edges: Vec<EncodedSuperedge> = supergraph.adj[s]
                    .iter()
                    .enumerate()
                    .map(|(a, &j)| {
                        let nj = u64::from(range_start[j as usize + 1] - range_start[j as usize]);
                        encode_superedge_t(
                            &sedges[m][a],
                            nj,
                            config.ref_mode,
                            config.superedge_policy,
                            config.codec.superedge,
                            inner_threads,
                        )
                    })
                    .collect();
                (enc_intra, edges)
            });
        drop(intra);
        drop(sedges);

        // Spill in shard-local supernode order, which is ascending global
        // order — the invariant the stitch's sequential reads rely on.
        let spill_path = spill_dir.join(format!("shard_{k:03}.bin"));
        let mut out = BufWriter::new(std::fs::File::create(&spill_path)?);
        let info = &mut plan.shards[k];
        info.supernodes = supers.len() as u32;
        for (enc_intra, edges) in &encoded {
            intranode_bits += enc_intra.bit_len;
            out.write_all(&enc_intra.bit_len.to_le_bytes())?;
            out.write_all(&(enc_intra.bytes.len() as u32).to_le_bytes())?;
            out.write_all(&enc_intra.bytes)?;
            info.blobs += 1;
            info.encoded_bytes += enc_intra.bytes.len() as u64;
            for enc in edges {
                superedge_bits += enc.bit_len;
                match enc.kind {
                    SuperedgeKind::Positive => positive_superedges += 1,
                    SuperedgeKind::Negative => negative_superedges += 1,
                }
                out.write_all(&enc.bit_len.to_le_bytes())?;
                out.write_all(&(enc.bytes.len() as u32).to_le_bytes())?;
                out.write_all(&enc.bytes)?;
                info.blobs += 1;
                info.encoded_bytes += enc.bytes.len() as u64;
            }
        }
        out.flush()?;
    }
    record_span("core.build.encode", "build", &t);
    let encode_secs = t.elapsed().as_secs_f64();

    // 4. Stitch: walk supernodes in global order, pulling each one's blobs
    //    from its shard's spill file. Within a shard supernodes were
    //    spilled in ascending global order, so every spill file is read
    //    strictly sequentially.
    let t = Stopwatch::start();
    let readers: Vec<std::fs::File> = (0..plan.len())
        .map(|k| std::fs::File::open(spill_dir.join(format!("shard_{k:03}.bin"))))
        .collect::<std::io::Result<_>>()?;
    let mut offsets = vec![0u64; plan.len()];
    // Reads go through the wg-fault shim so injected disk faults cover the
    // stitch pass like every other read in the pipeline.
    let mut read_blob = |k: usize| -> Result<(Vec<u8>, u64)> {
        let (f, off) = (&readers[k], &mut offsets[k]);
        let mut b8 = [0u8; 8];
        let mut b4 = [0u8; 4];
        wg_fault::read_exact_at(f, &mut b8, *off)?;
        wg_fault::read_exact_at(f, &mut b4, *off + 8)?;
        *off += 12;
        let bit_len = u64::from_le_bytes(b8);
        let mut bytes = vec![0u8; u32::from_le_bytes(b4) as usize];
        wg_fault::read_exact_at(f, &mut bytes, *off)?;
        *off += bytes.len() as u64;
        Ok((bytes, bit_len))
    };
    let mut writer = IndexFileWriter::create(dir, config.max_file_bytes)?;
    let mut intranode_loc = Vec::with_capacity(n_super);
    let mut superedge_loc: Vec<Vec<GraphLocator>> = Vec::with_capacity(n_super);
    let mut blob_crc = Vec::new();
    for (s, &shard) in shard_of_super.iter().enumerate() {
        let k = shard as usize;
        let (bytes, bit_len) = read_blob(k)?;
        blob_crc.push(wg_fault::crc32c(&bytes));
        intranode_loc.push(writer.append(&bytes, bit_len)?);
        let mut locs = Vec::with_capacity(supergraph.adj[s].len());
        for _ in 0..supergraph.adj[s].len() {
            let (bytes, bit_len) = read_blob(k)?;
            blob_crc.push(wg_fault::crc32c(&bytes));
            locs.push(writer.append(&bytes, bit_len)?);
        }
        superedge_loc.push(locs);
    }
    let (index_bytes, _files) = writer.finish()?;

    // 5. Metadata, identical to the in-memory builder, plus the shard
    //    manifest. The spill scratch goes away before the integrity
    //    manifest is computed, so `sums.bin` covers exactly the
    //    representation plus `shards.bin`.
    let num_domains = input.domains.iter().copied().max().map_or(0, |d| d + 1);
    let mut domain_supernodes: Vec<Vec<u32>> = vec![Vec::new(); num_domains as usize];
    for (s, e) in partition.elements.iter().enumerate() {
        domain_supernodes[e.domain as usize].push(s as u32);
    }
    let supergraph_bits = supergraph.encoded_bits();
    let meta = SNodeMeta {
        num_pages: n_pages,
        range_start: range_start.clone(),
        supergraph_bits,
        supergraph,
        intranode_loc,
        superedge_loc,
        domain_supernodes,
        codec: config.codec,
        max_file_bytes: config.max_file_bytes,
    };
    let meta_bytes = meta.write(dir)?;
    renumbering.write(dir)?;
    plan.write(dir)?;
    std::fs::remove_dir_all(&spill_dir)?;
    let checksum_bytes = crate::integrity::IntegrityManifest::compute(dir, blob_crc)?.write(dir)?;
    record_span("core.build.write", "build", &t);
    let write_secs = t.elapsed().as_secs_f64();

    record_span("core.build.total", "build", &t_build);
    let timings = StageTimings {
        threads,
        refine_secs,
        remap_secs,
        encode_secs,
        write_secs,
        total_secs: t_build.elapsed().as_secs_f64(),
    };
    let stats = BuildStats {
        refine: refine_stats,
        num_supernodes: meta.num_supernodes(),
        num_superedges: meta.supergraph.num_superedges(),
        supernode_graph_bytes_with_pointers: meta.supergraph.encoded_bytes_with_pointers(),
        supernode_graph_bits: supergraph_bits,
        intranode_bits,
        superedge_bits,
        meta_bytes,
        index_bytes,
        checksum_bytes,
        positive_superedges,
        negative_superedges,
        num_edges: input.graph.num_edges(),
        timings,
    };
    Ok((stats, renumbering))
}

/// Orders pages: supernode by element index, lexicographic URL within.
fn number_pages(partition: &Partition, urls: &[&str]) -> Renumbering {
    let mut old_of_new = Vec::with_capacity(urls.len());
    for e in &partition.elements {
        let mut pages = e.pages.clone();
        pages.sort_by(|&a, &b| urls[a as usize].cmp(urls[b as usize]));
        old_of_new.extend_from_slice(&pages);
    }
    Renumbering::from_old_of_new(old_of_new)
}

/// Contiguous page-id range starts per supernode.
fn compute_ranges(partition: &Partition) -> Vec<u32> {
    let mut starts = Vec::with_capacity(partition.len() + 1);
    let mut acc = 0u32;
    starts.push(0);
    for e in &partition.elements {
        acc += e.pages.len() as u32;
        starts.push(acc);
    }
    starts
}

/// The input graph re-expressed in new ids, bucketed per supernode.
struct Remapped {
    /// `intra[s][local]` = local targets within supernode `s`.
    intra: Vec<Vec<Vec<u32>>>,
    /// `(i, j)` → per-source (all |Ni| of them) local target lists in `Nj`.
    superedges: HashMap<(u32, u32), Vec<Vec<u32>>>,
}

fn remap(
    partition: &Partition,
    graph: &Graph,
    renumbering: &Renumbering,
    range_start: &[u32],
) -> Remapped {
    let n_super = partition.len();
    let mut intra: Vec<Vec<Vec<u32>>> = (0..n_super)
        .map(|s| vec![Vec::new(); (range_start[s + 1] - range_start[s]) as usize])
        .collect();
    let mut superedges: HashMap<(u32, u32), Vec<Vec<u32>>> = HashMap::new();

    // supernode of a *new* id is cheap: binary search over range_start.
    let super_of =
        |new_id: u32| -> u32 { (range_start.partition_point(|&st| st <= new_id) - 1) as u32 };

    for new_src in 0..graph.num_nodes() {
        let old_src = renumbering.old_of_new[new_src as usize];
        let s = super_of(new_src);
        let local_src = new_src - range_start[s as usize];
        for &old_tgt in graph.neighbors(old_src) {
            let new_tgt = renumbering.new_of_old[old_tgt as usize];
            let j = super_of(new_tgt);
            let local_tgt = new_tgt - range_start[j as usize];
            if j == s {
                intra[s as usize][local_src as usize].push(local_tgt);
            } else {
                let ni = (range_start[s as usize + 1] - range_start[s as usize]) as usize;
                let bucket = superedges
                    .entry((s, j))
                    .or_insert_with(|| vec![Vec::new(); ni]);
                bucket[local_src as usize].push(local_tgt);
            }
        }
    }
    // Lists must be sorted for the codecs.
    for lists in &mut intra {
        for l in lists {
            l.sort_unstable();
            l.dedup();
        }
    }
    for lists in superedges.values_mut() {
        for l in lists {
            l.sort_unstable();
            l.dedup();
        }
    }
    Remapped { intra, superedges }
}

/// Derives the supernode graph from the superedge buckets (targets sorted).
fn supergraph_from_buckets(remapped: &Remapped) -> SupernodeGraph {
    let n = remapped.intra.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(i, j) in remapped.superedges.keys() {
        adj[i as usize].push(j);
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    SupernodeGraph { adj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{IndexFileReader, SNodeMeta};
    use crate::subgraphs::{decode_intranode, decode_superedge};

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wg_snode_build_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    /// A small but structured repository: 2 domains, 3 hosts, 12 pages.
    fn small_repo() -> (Vec<&'static str>, Vec<u32>, Graph) {
        let urls: Vec<&'static str> = vec![
            "http://www.alpha.edu/a/p0.html",
            "http://www.alpha.edu/a/p1.html",
            "http://www.alpha.edu/b/p2.html",
            "http://www.alpha.edu/b/p3.html",
            "http://cs.alpha.edu/p4.html",
            "http://cs.alpha.edu/p5.html",
            "http://www.beta.com/x/p6.html",
            "http://www.beta.com/x/p7.html",
            "http://www.beta.com/y/p8.html",
            "http://www.beta.com/p9.html",
            "http://www.beta.com/y/p10.html",
            "http://cs.alpha.edu/z/p11.html",
        ];
        let domains = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0];
        let graph = Graph::from_edges(
            12,
            [
                (0, 1),
                (1, 0),
                (0, 2),
                (2, 3),
                (3, 6),
                (4, 5),
                (5, 11),
                (6, 7),
                (7, 8),
                (8, 6),
                (9, 10),
                (10, 0),
                (6, 0),
                (1, 6),
                (2, 6),
                (4, 0),
                (11, 4),
            ],
        );
        (urls, domains, graph)
    }

    fn build_small(
        name: &str,
    ) -> (
        std::path::PathBuf,
        BuildStats,
        Renumbering,
        Graph,
        Vec<&'static str>,
        Vec<u32>,
    ) {
        let (urls, domains, graph) = small_repo();
        let dir = temp_dir(name);
        let config = SNodeConfig {
            max_file_bytes: 64, // force multiple index files
            ..Default::default()
        };
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &graph,
        };
        let (stats, renum) = build_snode(input, &config, &dir).unwrap();
        (dir, stats, renum, graph, urls, domains)
    }

    #[test]
    fn renumbering_is_a_permutation_grouped_by_supernode() {
        let (dir, stats, renum, graph, urls, domains) = build_small("perm");
        assert_eq!(renum.old_of_new.len(), graph.num_nodes() as usize);
        let mut sorted = renum.old_of_new.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..graph.num_nodes()).collect::<Vec<_>>());
        // Within each supernode range, URLs ascend.
        let meta = SNodeMeta::read(&dir).unwrap();
        for s in 0..meta.num_supernodes() {
            let r = meta.page_range(s);
            let window: Vec<&str> = r
                .clone()
                .map(|n| urls[renum.old_of_new[n as usize] as usize])
                .collect();
            assert!(window.windows(2).all(|w| w[0] < w[1]), "supernode {s}");
            // Domain purity.
            let doms: Vec<u32> = r
                .map(|n| domains[renum.old_of_new[n as usize] as usize])
                .collect();
            assert!(doms.windows(2).all(|w| w[0] == w[1]));
        }
        assert!(stats.num_supernodes >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn representation_reconstructs_graph_exactly() {
        let (dir, _stats, renum, graph, _urls, _domains) = build_small("exact");
        let meta = SNodeMeta::read(&dir).unwrap();
        let files = IndexFileReader::open(&dir).unwrap();

        // Decode everything back and compare edge sets in new-id space.
        let mut rebuilt: Vec<Vec<u32>> = vec![Vec::new(); graph.num_nodes() as usize];
        for s in 0..meta.num_supernodes() {
            let start = meta.page_range(s).start;
            let bytes = files.read(&meta.intranode_loc[s as usize]).unwrap();
            let lists = decode_intranode(
                &bytes,
                meta.intranode_loc[s as usize].bit_len,
                ListCodec::GAMMA,
            )
            .unwrap();
            for (local, list) in lists.iter().enumerate() {
                for &t in list {
                    rebuilt[(start + local as u32) as usize].push(start + t);
                }
            }
            for (k, &j) in meta.supergraph.adj[s as usize].iter().enumerate() {
                let loc = &meta.superedge_loc[s as usize][k];
                let bytes = files.read(loc).unwrap();
                let ni = u64::from(meta.supernode_size(s));
                let nj = u64::from(meta.supernode_size(j));
                let lists =
                    decode_superedge(&bytes, loc.bit_len, ni, nj, ListCodec::GAMMA).unwrap();
                let jstart = meta.page_range(j).start;
                for (local, list) in lists.iter().enumerate() {
                    for &t in list {
                        rebuilt[(start + local as u32) as usize].push(jstart + t);
                    }
                }
            }
        }
        for l in &mut rebuilt {
            l.sort_unstable();
        }
        for old in 0..graph.num_nodes() {
            let new = renum.new_of_old[old as usize];
            let expected: Vec<u32> = {
                let mut v: Vec<u32> = graph
                    .neighbors(old)
                    .iter()
                    .map(|&t| renum.new_of_old[t as usize])
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(
                rebuilt[new as usize], expected,
                "adjacency mismatch for old page {old}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_are_consistent() {
        let (dir, stats, _renum, graph, _urls, _domains) = build_small("stats");
        assert_eq!(stats.num_edges, graph.num_edges());
        assert!(stats.total_bits() > 0);
        assert!(stats.bits_per_edge() > 0.0);
        assert_eq!(
            stats.positive_superedges + stats.negative_superedges,
            stats.num_superedges
        );
        // index files hold exactly the encoded graphs.
        assert!(stats.index_bytes > 0);
        assert!(stats.meta_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn domain_index_covers_all_supernodes() {
        let (dir, _stats, _renum, _graph, _urls, domains) = build_small("domidx");
        let meta = SNodeMeta::read(&dir).unwrap();
        let num_domains = domains.iter().copied().max().unwrap() + 1;
        assert_eq!(meta.domain_supernodes.len(), num_domains as usize);
        let mut covered: Vec<u32> = meta
            .domain_supernodes
            .iter()
            .flat_map(|l| l.iter().copied())
            .collect();
        covered.sort_unstable();
        assert_eq!(
            covered,
            (0..meta.num_supernodes()).collect::<Vec<_>>(),
            "every supernode belongs to exactly one domain"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_is_deterministic() {
        let (dir_a, stats_a, renum_a, ..) = build_small("det_a");
        let (dir_b, stats_b, renum_b, ..) = build_small("det_b");
        assert_eq!(renum_a, renum_b);
        assert_eq!(stats_a.num_supernodes, stats_b.num_supernodes);
        assert_eq!(stats_a.total_bits(), stats_b.total_bits());
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    /// All regular files directly under `dir`, as (name, bytes).
    fn dir_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_file() {
                out.push((
                    entry.file_name().into_string().unwrap(),
                    std::fs::read(entry.path()).unwrap(),
                ));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn sharded_build_is_byte_identical_except_manifest() {
        let (urls, domains, graph) = small_repo();
        let config = SNodeConfig {
            max_file_bytes: 64,
            ..Default::default()
        };
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &graph,
        };
        let dir_mem = temp_dir("shard_mem");
        let (stats_mem, renum_mem) = build_snode(input, &config, &dir_mem).unwrap();
        let files_mem = dir_files(&dir_mem);

        for shards in [1u32, 2, 3, 8] {
            let dir_sh = temp_dir(&format!("shard_{shards}"));
            let (stats_sh, renum_sh) =
                build_snode_sharded(input, &config, &dir_sh, shards).unwrap();
            assert_eq!(renum_sh, renum_mem);
            assert_eq!(stats_sh.num_supernodes, stats_mem.num_supernodes);
            assert_eq!(stats_sh.num_superedges, stats_mem.num_superedges);
            assert_eq!(stats_sh.intranode_bits, stats_mem.intranode_bits);
            assert_eq!(stats_sh.superedge_bits, stats_mem.superedge_bits);
            assert_eq!(stats_sh.index_bytes, stats_mem.index_bytes);
            assert_eq!(stats_sh.meta_bytes, stats_mem.meta_bytes);
            assert_eq!(stats_sh.positive_superedges, stats_mem.positive_superedges);
            assert_eq!(stats_sh.negative_superedges, stats_mem.negative_superedges);
            assert!(!dir_sh.join("spill").exists(), "scratch cleaned up");

            // Byte identity file by file: shards.bin is the only extra,
            // sums.bin the only divergence (it covers shards.bin).
            let files_sh = dir_files(&dir_sh);
            let names_sh: Vec<&str> = files_sh.iter().map(|(n, _)| n.as_str()).collect();
            assert!(names_sh.contains(&crate::shard::SHARDS_FILE));
            for (name, bytes) in &files_mem {
                if name == crate::integrity::SUMS_FILE {
                    continue;
                }
                let found = files_sh.iter().find(|(n, _)| n == name);
                assert_eq!(
                    found.map(|(_, b)| b),
                    Some(bytes),
                    "{name} differs at shards={shards}"
                );
            }
            assert_eq!(files_sh.len(), files_mem.len() + 1);

            // The manifest accounts for every supernode and page.
            let plan = crate::shard::ShardManifest::read(&dir_sh).unwrap().unwrap();
            let supers: u32 = plan.shards.iter().map(|s| s.supernodes).sum();
            let pages: u32 = plan.shards.iter().map(|s| s.pages).sum();
            assert_eq!(supers, stats_mem.num_supernodes);
            assert_eq!(pages, graph.num_nodes());
            if shards == 1 {
                assert_eq!(plan.len(), 1);
            }

            // And the sharded directory verifies clean.
            crate::verify::verify(&dir_sh).unwrap();
            std::fs::remove_dir_all(&dir_sh).ok();
        }
        std::fs::remove_dir_all(&dir_mem).ok();
    }

    #[test]
    fn single_page_repository() {
        let urls = vec!["http://www.solo.org/p.html"];
        let domains = vec![0u32];
        let graph = Graph::from_edges(1, []);
        let dir = temp_dir("solo");
        let input = RepoInput {
            urls: &urls,
            domains: &domains,
            graph: &graph,
        };
        let (stats, renum) = build_snode(input, &SNodeConfig::default(), &dir).unwrap();
        assert_eq!(stats.num_supernodes, 1);
        assert_eq!(stats.num_superedges, 0);
        assert_eq!(renum.old_of_new, vec![0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
