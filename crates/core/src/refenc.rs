//! Reference encoding of adjacency-list collections (§3.1 of the paper).
//!
//! A collection of sorted adjacency lists over a shared universe is encoded
//! so that a list may be represented *relative to a reference list*: a bit
//! vector marking which reference entries are shared, plus a gap-coded list
//! of extras. Which list references which is decided through the
//! Adler–Mitzenmacher **affinity graph**: node `y` has an incoming edge from
//! every candidate reference `x` weighted by the cost in bits of encoding
//! `y` given `x`, plus an edge from a virtual root weighted by the cost of
//! encoding `y` standalone. A minimum-weight spanning arborescence rooted at
//! the virtual root is then exactly the optimal reference assignment.
//!
//! Two reference-selection modes are provided:
//!
//! * [`RefMode::Exact`] — the full affinity graph and a Chu–Liu/Edmonds
//!   minimum arborescence. Faithful to the paper's formulation; `O(n²·deg)`
//!   affinity construction plus `O(V·E)` Edmonds, so it is reserved for
//!   small graphs (which is also what the paper does — it applies the
//!   scheme "to the much smaller intranode and superedge graphs").
//! * [`RefMode::Windowed`]`(w)` — candidate references are restricted to the
//!   `w` preceding lists. All reference edges then point backward, the
//!   affinity graph restricted this way is a DAG, and the optimal
//!   arborescence is simply each node's cheapest incoming edge. This is the
//!   scalable default; ablation A1 quantifies the loss vs `Exact`.
//!
//! The serialised format is self-contained and supports *random access* to
//! individual lists (needed for the paper's Table 2 access-time
//! experiment): a γ-coded directory of per-list payload lengths precedes
//! the payloads, and decoding list `i` walks its reference chain.

use crate::codec::ListCodec;
use crate::{Result, SNodeError};
use wg_bitio::{blocks, codes, rle, zeta, BitReader, BitWriter};

/// Depth cap on reference chains in [`RefMode::Windowed`] encoding.
///
/// An uncapped chain makes a single random-access decode O(chain) lists,
/// which is what Table 2 measures; the Link DB bounds its chains the same
/// way. [`RefMode::Exact`] (Chu–Liu/Edmonds) carries no cap, so
/// representations built with it may legitimately exceed this depth — the
/// analyzer reports deeper chains as a warning, not corruption.
pub const MAX_REF_CHAIN: u32 = 4;

/// Shared handle to the `core.refenc.chain_len` histogram (the number of
/// reference-encoded steps a random-access decode had to walk — the cost
/// driver Table 2 measures). Resolved once; only touched under `--metrics`.
fn chain_len_histogram() -> &'static wg_obs::Histogram {
    static H: std::sync::OnceLock<wg_obs::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| wg_obs::global().histogram("core.refenc.chain_len"))
}

/// Reference-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefMode {
    /// No reference encoding: every list is a plain gap list.
    None,
    /// Candidate references are the `w` preceding lists (w ≥ 1).
    Windowed(u32),
    /// Full affinity graph + Chu–Liu/Edmonds arborescence.
    Exact,
}

impl Default for RefMode {
    fn default() -> Self {
        RefMode::Windowed(32)
    }
}

/// Declares where an encoded-lists universe size comes from at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Universe {
    /// The universe equals the number of lists (intranode graphs: local
    /// targets index the lists themselves).
    SameAsCount,
    /// The caller supplies the universe (superedge graphs: |Nj|).
    Explicit(u64),
}

/// A serialised collection of adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedLists {
    /// The bit stream.
    pub bytes: Vec<u8>,
    /// Exact number of valid bits in `bytes`.
    pub bit_len: u64,
}

impl EncodedLists {
    /// Size in bytes (rounded up).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Encodes `lists` (each strictly ascending, entries `< universe`) with the
/// given reference mode and list codec, single-threaded.
///
/// # Panics
/// Panics if a list entry is `>= universe` or a list is not strictly
/// ascending (caller bug — these are internal graph invariants).
pub fn encode_lists(
    lists: &[Vec<u32>],
    universe: u64,
    mode: RefMode,
    codec: ListCodec,
) -> EncodedLists {
    encode_lists_t(lists, universe, mode, codec, 1)
}

/// [`encode_lists`] with up to `threads` workers for reference selection
/// and payload encoding. The output is byte-identical for every thread
/// count: parallelism only redistributes pure per-list computations whose
/// results are concatenated in list order.
pub fn encode_lists_t(
    lists: &[Vec<u32>],
    universe: u64,
    mode: RefMode,
    codec: ListCodec,
    threads: u32,
) -> EncodedLists {
    let plan = plan_lists(lists, universe, mode, codec, threads);
    encode_lists_planned(lists, universe, &plan, threads)
}

/// A reference-selection plan: every list's chosen parent plus the exact
/// bit sizes the resulting encoding will have.
///
/// Planning pays for reference selection (the expensive part) but writes
/// no bit stream; [`encode_lists_planned`] materialises the stream from a
/// plan. Splitting the two lets the superedge polarity decision size both
/// orientations and encode only the winner, instead of fully encoding the
/// loser just to measure it.
#[derive(Debug, Clone)]
pub(crate) struct ListsPlan {
    /// Chosen reference parent per list (`None` = plain).
    parents: Vec<Option<u32>>,
    /// Exact payload size in bits per list (mode bit included).
    payload_bits: Vec<u64>,
    /// Whether the stream needs an explicit directory (forward refs).
    has_dir: bool,
    /// The list codec the plan's sizes were computed under; the encode
    /// step must use the same one.
    codec: ListCodec,
    /// Exact size in bits of the full encoded stream.
    pub(crate) total_bits: u64,
}

/// Selects references and computes the exact encoded size, without
/// producing the bit stream.
pub(crate) fn plan_lists(
    lists: &[Vec<u32>],
    universe: u64,
    mode: RefMode,
    codec: ListCodec,
    threads: u32,
) -> ListsPlan {
    for list in lists {
        debug_assert!(list.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(list.iter().all(|&x| u64::from(x) < universe.max(1)));
    }
    let parents = choose_references(lists, universe, mode, codec, threads);
    let n = lists.len();
    // Exact per-payload sizes: every component codec exposes an exact
    // length function, so the size of a payload is known without writing
    // it. Pure per-list computation → parallel chunks, results in order.
    let payload_bits: Vec<u64> = crate::par::par_chunks(threads, n, 64, |range| {
        range
            .map(|i| match parents[i] {
                None => 1 + bounded_gap_list_len(&lists[i], universe, codec),
                Some(p) => {
                    let (bits, extras) = diff_against(&lists[p as usize], &lists[i]);
                    1 + codes::minimal_binary_len(u64::from(p), n as u64)
                        + mask_len(&bits, codec)
                        + bounded_gap_list_len(&extras, universe, codec)
                }
            })
            .collect::<Vec<u64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let has_dir = parents
        .iter()
        .enumerate()
        .any(|(i, p)| p.is_some_and(|p| p as usize > i));
    let mut total_bits = codes::gamma_len(n as u64) + 1;
    if has_dir {
        total_bits += payload_bits
            .iter()
            .map(|&b| codes::gamma_len(b))
            .sum::<u64>();
    }
    total_bits += payload_bits.iter().sum::<u64>();
    ListsPlan {
        parents,
        payload_bits,
        has_dir,
        codec,
        total_bits,
    }
}

/// Materialises the bit stream a plan describes. The stream is identical
/// to what the one-shot encoder would produce for the plan's mode.
pub(crate) fn encode_lists_planned(
    lists: &[Vec<u32>],
    universe: u64,
    plan: &ListsPlan,
    threads: u32,
) -> EncodedLists {
    let n = lists.len();
    debug_assert_eq!(plan.parents.len(), n);
    let codec = plan.codec;

    // Encode payloads first so their lengths can go in the directory. The
    // universe size is NOT stored: every caller knows it (an intranode
    // graph's universe is its own list count; a superedge graph's is |Nj|,
    // which the resident supernode metadata records), and at a few dozen
    // bits per graph it would be the single largest fixed overhead on the
    // many small superedge graphs a Web-scale partition produces.
    let payloads: Vec<(Vec<u8>, u64)> = crate::par::par_chunks(threads, n, 64, |range| {
        range
            .map(|i| {
                let list = &lists[i];
                let mut w = BitWriter::new();
                match plan.parents[i] {
                    None => {
                        w.write_bit(false);
                        write_bounded_gap_list(&mut w, list, universe, codec);
                    }
                    Some(p) => {
                        w.write_bit(true);
                        codes::write_minimal_binary(&mut w, u64::from(p), n as u64);
                        let reference = &lists[p as usize];
                        let (bits, extras) = diff_against(reference, list);
                        write_mask(&mut w, &bits, codec);
                        write_bounded_gap_list(&mut w, &extras, universe, codec);
                    }
                }
                w.finish()
            })
            .collect::<Vec<(Vec<u8>, u64)>>()
    })
    .into_iter()
    .flatten()
    .collect();
    debug_assert!(payloads
        .iter()
        .zip(&plan.payload_bits)
        .all(|((_, got), &want)| *got == want));

    let mut w = BitWriter::new();
    codes::write_gamma(&mut w, n as u64);
    // Payloads are self-delimiting when every reference points backward
    // (the default), so no per-list directory is stored: a loader rebuilds
    // offsets with one sequential decode (see [`ListsIndex::load`]), the
    // way the paper's scheme can afford fast in-memory access without
    // paying index bits on disk. Only Exact-mode encodings with forward
    // references carry an explicit directory (flagged by one bit).
    w.write_bit(plan.has_dir);
    if plan.has_dir {
        for &(_, bits) in &payloads {
            codes::write_gamma(&mut w, bits);
        }
    }
    for (bytes, bits) in &payloads {
        w.append(bytes, *bits);
    }
    let (bytes, bit_len) = w.finish();
    debug_assert_eq!(bit_len, plan.total_bits, "plan mis-sized the encoding");
    EncodedLists { bytes, bit_len }
}

/// Exact encoded size in bits without producing the encoding (for the
/// positive-vs-negative superedge decision). Pays for reference selection
/// only; no bit stream is written.
pub fn encoded_size_bits(
    lists: &[Vec<u32>],
    universe: u64,
    mode: RefMode,
    codec: ListCodec,
) -> u64 {
    plan_lists(lists, universe, mode, codec, 1).total_bits
}

/// Owned directory of an [`EncodedLists`] stream: everything needed for
/// random access except the bytes themselves.
///
/// Splitting the directory from the data lets callers that keep many
/// encoded graphs resident (the Table 2 in-memory access path) parse each
/// directory once and decode lists straight out of the shared byte buffers.
#[derive(Debug, Clone)]
pub struct ListsIndex {
    num_lists: u32,
    universe: u64,
    /// The list codec the stream was encoded with (not stored in the
    /// stream: the directory's `meta.bin` header records it once).
    codec: ListCodec,
    /// Absolute bit offset of each payload (one extra end sentinel).
    /// `u32` bounds a single encoded graph at 512 MiB — orders of magnitude
    /// above any graph a sane partition produces, and half the resident
    /// directory footprint, which is what the query-time memory cap buys.
    offsets: Vec<u32>,
}

impl ListsIndex {
    /// Parses the header + directory of an encoded stream.
    ///
    /// `universe` declares the entry universe: [`Universe::SameAsCount`]
    /// for intranode-style graphs (entries index the lists themselves) or
    /// [`Universe::Explicit`] when the caller knows it (superedge targets
    /// in `0..|Nj|`). `codec` declares the list codec the stream was
    /// written with. Neither is stored in the stream — the universe comes
    /// from resident metadata, the codec from the `meta.bin` header.
    pub fn parse(data: &[u8], bit_len: u64, universe: Universe, codec: ListCodec) -> Result<Self> {
        Self::parse_at(data, bit_len, 0, universe, codec)
    }

    /// Like [`ListsIndex::parse`], but the encoded stream starts at bit
    /// offset `start` inside `data` (used when the stream is embedded in a
    /// larger structure, e.g. a superedge graph header).
    pub fn parse_at(
        data: &[u8],
        bit_len: u64,
        start: u64,
        universe: Universe,
        codec: ListCodec,
    ) -> Result<Self> {
        Ok(Self::load_at(data, bit_len, start, universe, codec)?.0)
    }

    /// Parses the stream and decodes every list in one sequential pass,
    /// returning both the index (with rebuilt per-list offsets, enabling
    /// random access) and the decoded lists. This is the load-time path:
    /// the on-disk format stores no directory, so offsets come from the
    /// decode that a loader performs anyway.
    pub fn load(
        data: &[u8],
        bit_len: u64,
        universe: Universe,
        codec: ListCodec,
    ) -> Result<(Self, Vec<Vec<u32>>)> {
        Self::load_at(data, bit_len, 0, universe, codec)
    }

    /// [`ListsIndex::load`] for a stream embedded at bit offset `start`.
    pub fn load_at(
        data: &[u8],
        bit_len: u64,
        start: u64,
        universe: Universe,
        codec: ListCodec,
    ) -> Result<(Self, Vec<Vec<u32>>)> {
        let mut r = BitReader::with_bit_len(data, bit_len);
        r.seek(start)?;
        let n = codes::read_gamma(&mut r)?;
        if n > u64::from(u32::MAX) {
            return Err(SNodeError::Corrupt("list count overflows u32"));
        }
        let universe = match universe {
            Universe::Explicit(u) => u,
            Universe::SameAsCount => n,
        };
        if bit_len > u64::from(u32::MAX) {
            return Err(SNodeError::Corrupt("encoded graph exceeds 512 MiB"));
        }
        let has_dir = r.read_bit()?;
        // `n` is untrusted until the per-list decodes below confirm it;
        // clamp the eager reservations so a corrupt γ cannot turn into a
        // giant allocation (the vectors still grow on demand).
        let cap = (n as usize).saturating_add(1).min(1 << 20);
        let mut offsets: Vec<u32> = Vec::with_capacity(cap);

        if has_dir {
            // Explicit directory (Exact-mode encodings with forward refs).
            let mut lens = Vec::with_capacity((n as usize).min(1 << 20));
            for _ in 0..n {
                lens.push(codes::read_gamma(&mut r)?);
            }
            // The directory lengths are untrusted γ values: sum them with
            // checked arithmetic so a corrupt entry can neither wrap `pos`
            // nor silently truncate into the u32 offset table.
            let mut pos = r.position();
            for &l in &lens {
                offsets.push(bit_offset_u32(pos)?);
                pos = pos
                    .checked_add(l)
                    .ok_or(SNodeError::Corrupt("directory length sum overflows"))?;
            }
            if pos > bit_len {
                return Err(SNodeError::Corrupt("directory overruns stream"));
            }
            offsets.push(bit_offset_u32(pos)?);
            let index = Self {
                num_lists: n as u32,
                universe,
                codec,
                offsets,
            };
            let lists = index.decode_all(data, bit_len)?;
            return Ok((index, lists));
        }

        // No directory: decode sequentially (references always point
        // backward in this layout), recording where each payload starts.
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity((n as usize).min(1 << 20));
        let mut copied: Vec<u32> = Vec::new(); // scratch reused across lists
        for i in 0..n {
            offsets.push(bit_offset_u32(r.position())?);
            let is_ref = r.read_bit()?;
            let list = if is_ref {
                let parent = codes::read_minimal_binary(&mut r, n)? as usize;
                if parent >= i as usize {
                    return Err(SNodeError::Corrupt(
                        "forward reference in directory-less stream",
                    ));
                }
                let reference = &lists[parent];
                copied.clear();
                copied.reserve(reference.len());
                read_mask_set_positions(&mut r, reference.len(), codec, |pos| {
                    copied.push(reference[pos]);
                })?;
                let extras = read_bounded_gap_list(&mut r, universe, codec)?;
                let mut merged = Vec::new();
                merge_sorted_u32(&copied, &extras, &mut merged)?;
                merged
            } else {
                read_bounded_gap_list(&mut r, universe, codec)?
            };
            lists.push(list);
        }
        offsets.push(bit_offset_u32(r.position())?);
        Ok((
            Self {
                num_lists: n as u32,
                universe,
                codec,
                offsets,
            },
            lists,
        ))
    }

    /// Number of lists.
    pub fn num_lists(&self) -> u32 {
        self.num_lists
    }

    /// Universe size the entries live in.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Approximate heap footprint of the directory itself.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 4 + std::mem::size_of::<Self>()
    }

    /// Bit position one past the final payload, in the same absolute
    /// coordinates as the stream this directory was parsed from. Anything
    /// between this and the declared bit length is trailing garbage.
    pub fn end_bit(&self) -> u64 {
        self.offsets.last().map_or(0, |&o| u64::from(o))
    }

    /// The reference parent of every list (`None` = plain), read from the
    /// payload headers without decoding any list. This is the raw on-disk
    /// reference forest; audits use it to check acyclicity and depth.
    pub fn reference_parents(&self, data: &[u8], bit_len: u64) -> Result<Vec<Option<u32>>> {
        (0..self.num_lists)
            .map(|i| self.payload_parent(data, bit_len, i))
            .collect()
    }

    /// Decodes list `i`, following its reference chain.
    pub fn decode_list(&self, data: &[u8], bit_len: u64, i: u32) -> Result<Vec<u32>> {
        self.decode_list_with_memo(data, bit_len, i, &mut NoMemo)
    }

    /// Decodes every list (reference chains shared via memoisation).
    pub fn decode_all(&self, data: &[u8], bit_len: u64) -> Result<Vec<Vec<u32>>> {
        let mut memo = VecMemo(vec![None; self.num_lists as usize]);
        let mut out = Vec::with_capacity(self.num_lists as usize);
        for i in 0..self.num_lists {
            let list = self.decode_list_with_memo(data, bit_len, i, &mut memo)?;
            // The chain decode memoises only ancestors; a full sweep wants
            // every list retained, since any list may be a later reference.
            memo.put(i, &list);
            out.push(list);
        }
        Ok(out)
    }

    /// Reads the header of payload `i`: `Some(parent)` or `None` for plain.
    fn payload_parent(&self, data: &[u8], bit_len: u64, i: u32) -> Result<Option<u32>> {
        let mut r = self.reader_at(data, bit_len, i)?;
        if r.read_bit()? {
            let p = codes::read_minimal_binary(&mut r, u64::from(self.num_lists))?;
            Ok(Some(p as u32))
        } else {
            Ok(None)
        }
    }

    fn reader_at<'d>(&self, data: &'d [u8], bit_len: u64, i: u32) -> Result<BitReader<'d>> {
        if i >= self.num_lists {
            return Err(SNodeError::Corrupt("list index out of range"));
        }
        let mut r = BitReader::with_bit_len(data, bit_len);
        r.seek(u64::from(self.offsets[i as usize]))?;
        Ok(r)
    }

    /// Decodes list `i` through a caller-supplied [`DecodeMemo`].
    ///
    /// The memo is consulted for `i` itself and for every ancestor on its
    /// reference chain; each *ancestor* decoded along the way is offered
    /// back via [`DecodeMemo::put`] — the leaf itself is not. Ancestors are
    /// shared by construction (reference selection points many lists at the
    /// same nearby list), so a persistent memo (the query cache's
    /// decoded-list memo) turns repeated chain walks into O(1) prefix
    /// lookups; offering the leaf too would charge an allocation to every
    /// random access for a list nothing else decodes through. Callers that
    /// want leaves retained (a full sweep, a hot-page cache) call
    /// [`DecodeMemo::put`] on the result themselves.
    pub fn decode_list_with_memo(
        &self,
        data: &[u8],
        bit_len: u64,
        i: u32,
        memo: &mut dyn DecodeMemo,
    ) -> Result<Vec<u32>> {
        if let Some(v) = memo.get(i) {
            return Ok(v.clone());
        }
        // Walk the reference chain up to a plain list (or memo hit).
        let mut chain = vec![i];
        let mut cur = i;
        let mut top: Vec<u32> = loop {
            match self.payload_parent(data, bit_len, cur)? {
                Some(p) => {
                    if let Some(v) = memo.get(p) {
                        break v.clone();
                    }
                    if chain.len() as u32 > self.num_lists {
                        return Err(SNodeError::Corrupt("reference cycle detected"));
                    }
                    chain.push(p);
                    cur = p;
                }
                None => {
                    // cur is plain; decode it directly and pop it.
                    let list = self.decode_plain(data, bit_len, cur)?;
                    chain.pop();
                    if cur != i {
                        memo.put(cur, &list);
                    }
                    break list;
                }
            }
        };
        if wg_obs::metrics_enabled() {
            chain_len_histogram().record(chain.len() as u64);
        }
        // Decode down the chain, reusing one scratch buffer for the
        // copied-entries half of every step's merge.
        let mut copied: Vec<u32> = Vec::new();
        for &idx in chain.iter().rev() {
            top = self.decode_ref(data, bit_len, idx, &top, &mut copied)?;
            if idx != i {
                memo.put(idx, &top);
            }
        }
        Ok(top)
    }

    /// Decodes payload `i`, known to be plain.
    fn decode_plain(&self, data: &[u8], bit_len: u64, i: u32) -> Result<Vec<u32>> {
        let mut r = self.reader_at(data, bit_len, i)?;
        let is_ref = r.read_bit()?;
        debug_assert!(!is_ref);
        read_bounded_gap_list(&mut r, self.universe, self.codec)
    }

    /// Decodes payload `i`, known to be reference-encoded against
    /// `reference` (its parent's decoded list). `copied` is caller-owned
    /// scratch, reused across the steps of a reference chain.
    fn decode_ref(
        &self,
        data: &[u8],
        bit_len: u64,
        i: u32,
        reference: &[u32],
        copied: &mut Vec<u32>,
    ) -> Result<Vec<u32>> {
        let mut r = self.reader_at(data, bit_len, i)?;
        let is_ref = r.read_bit()?;
        if !is_ref {
            return self.decode_plain(data, bit_len, i);
        }
        let _parent = codes::read_minimal_binary(&mut r, u64::from(self.num_lists))?;
        copied.clear();
        copied.reserve(reference.len());
        read_mask_set_positions(&mut r, reference.len(), self.codec, |pos| {
            copied.push(reference[pos]);
        })?;
        let extras = read_bounded_gap_list(&mut r, self.universe, self.codec)?;
        let mut merged = Vec::new();
        merge_sorted_u32(copied, &extras, &mut merged)?;
        Ok(merged)
    }
}

/// Converts an untrusted bit position into a directory offset, rejecting
/// anything past the 512 MiB single-graph bound instead of truncating.
fn bit_offset_u32(pos: u64) -> Result<u32> {
    u32::try_from(pos).map_err(|_| SNodeError::Corrupt("payload offset overflows directory bound"))
}

/// Merges two sorted `u32` slices into `out` (cleared first). Taking
/// slices and an output buffer keeps the hot decode path — one merge per
/// reference-chain step — from consuming and reallocating vectors: callers
/// reuse their scratch buffers across steps.
///
/// A well-formed stream never places the same value in both the copied
/// and the extra list, so a collision is reported as corruption rather
/// than silently producing a duplicate entry.
fn merge_sorted_u32(a: &[u32], b: &[u32], out: &mut Vec<u32>) -> Result<()> {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] == b[j] {
            return Err(SNodeError::Corrupt("copied and extra lists overlap"));
        }
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    Ok(())
}

/// Borrowing convenience wrapper: a [`ListsIndex`] bound to its bytes.
#[derive(Debug)]
pub struct ListsReader<'a> {
    data: &'a [u8],
    bit_len: u64,
    index: ListsIndex,
}

impl<'a> ListsReader<'a> {
    /// Parses the header + directory of an encoded stream.
    pub fn parse(
        data: &'a [u8],
        bit_len: u64,
        universe: Universe,
        codec: ListCodec,
    ) -> Result<Self> {
        Self::parse_at(data, bit_len, 0, universe, codec)
    }

    /// Parses a stream embedded at bit offset `start`.
    pub fn parse_at(
        data: &'a [u8],
        bit_len: u64,
        start: u64,
        universe: Universe,
        codec: ListCodec,
    ) -> Result<Self> {
        Ok(Self {
            data,
            bit_len,
            index: ListsIndex::parse_at(data, bit_len, start, universe, codec)?,
        })
    }

    /// Number of lists.
    pub fn num_lists(&self) -> u32 {
        self.index.num_lists()
    }

    /// Universe size the entries live in.
    pub fn universe(&self) -> u64 {
        self.index.universe()
    }

    /// Decodes list `i`, following its reference chain.
    pub fn decode_list(&self, i: u32) -> Result<Vec<u32>> {
        self.index.decode_list(self.data, self.bit_len, i)
    }

    /// Decodes every list.
    pub fn decode_all(&self) -> Result<Vec<Vec<u32>>> {
        self.index.decode_all(self.data, self.bit_len)
    }
}

/// Memoisation strategy for chain decoding.
///
/// `get` may hit on any list of the stream; `put` offers a freshly decoded
/// list and the memo is free to drop it (a bounded memo under byte
/// pressure, [`NoMemo`] always). Implementations must return exactly what
/// was `put` for an index, or nothing — decode correctness rests on it.
pub trait DecodeMemo {
    /// The memoised decoded form of list `i`, if retained.
    fn get(&self, i: u32) -> Option<&Vec<u32>>;
    /// Offers the decoded form of list `i` for retention.
    fn put(&mut self, i: u32, v: &[u32]);
}

/// No memoisation (single-list random access).
pub struct NoMemo;
impl DecodeMemo for NoMemo {
    fn get(&self, _i: u32) -> Option<&Vec<u32>> {
        None
    }
    fn put(&mut self, _i: u32, _v: &[u32]) {}
}

/// Full memo table (decode_all).
struct VecMemo(Vec<Option<Vec<u32>>>);
impl DecodeMemo for VecMemo {
    fn get(&self, i: u32) -> Option<&Vec<u32>> {
        self.0[i as usize].as_ref()
    }
    fn put(&mut self, i: u32, v: &[u32]) {
        self.0[i as usize] = Some(v.to_vec());
    }
}

// --- Codec-parameterised primitives ---------------------------------------

/// Minimum length of a consecutive-id run extracted as an interval when a
/// codec enables interval runs (the WebGraph default). Shorter runs stay
/// in the gap sequence, where a consecutive pair already costs one bit.
pub(crate) const MIN_INTERVAL: u32 = 4;

/// Bits of the gap code for `x` under shrinking parameter `k` (ζ₁ = γ,
/// dispatched to the tuned γ implementation).
#[inline]
fn gap_code_len(x: u64, k: u8) -> u64 {
    if k <= 1 {
        codes::gamma_len(x)
    } else {
        // Gap values fit u64 by construction (< 2^33) and `k` comes from
        // a validated `ListCodec`, so the domain check cannot fire; the
        // poisoned fallback keeps any future violation loud (the plan
        // size cross-check catches it) without a decode-path panic.
        zeta::zeta_len(x, u32::from(k)).unwrap_or(u64::MAX >> 8)
    }
}

#[inline]
fn write_gap_code(w: &mut BitWriter, x: u64, k: u8) {
    if k <= 1 {
        codes::write_gamma(w, x);
    } else {
        let ok = zeta::write_zeta(w, x, u32::from(k)).is_ok();
        debug_assert!(ok, "gap value outside the zeta domain");
    }
}

#[inline]
fn read_gap_code(r: &mut BitReader<'_>, k: u8) -> Result<u64> {
    if k <= 1 {
        Ok(codes::read_gamma(r)?)
    } else {
        Ok(zeta::read_zeta(r, u32::from(k))?)
    }
}

/// Bits of the copy-mask encoding `codec` selects.
#[inline]
fn mask_len(bits: &[bool], codec: ListCodec) -> u64 {
    if codec.copy_blocks {
        blocks::blocks_len(bits)
    } else {
        rle::encoded_len(bits)
    }
}

#[inline]
fn write_mask(w: &mut BitWriter, bits: &[bool], codec: ListCodec) {
    if codec.copy_blocks {
        blocks::write_blocks(w, bits);
    } else {
        rle::write_bitvec(w, bits);
    }
}

#[inline]
fn read_mask_set_positions(
    r: &mut BitReader<'_>,
    len: usize,
    codec: ListCodec,
    on_set: impl FnMut(usize),
) -> Result<()> {
    if codec.copy_blocks {
        blocks::read_blocks_set_positions(r, len, on_set)?;
    } else {
        rle::read_bitvec_set_positions(r, len, on_set)?;
    }
    Ok(())
}

/// Splits `list` into maximal consecutive-id runs of length ≥
/// [`MIN_INTERVAL`] (as `(left, len)` intervals) and the remaining
/// residual entries, both in ascending order.
fn split_intervals(list: &[u32]) -> (Vec<(u32, u32)>, Vec<u32>) {
    let mut intervals = Vec::new();
    let mut residuals = Vec::new();
    let mut i = 0usize;
    while i < list.len() {
        let mut j = i + 1;
        while j < list.len() && list[j] == list[j - 1] + 1 {
            j += 1;
        }
        let run = (j - i) as u32;
        if run >= MIN_INTERVAL {
            intervals.push((list[i], run));
        } else {
            residuals.extend_from_slice(&list[i..j]);
        }
        i = j;
    }
    (intervals, residuals)
}

// --- Cost model ----------------------------------------------------------

/// Cost in bits of a plain payload for `list` (excluding the directory).
fn plain_cost(list: &[u32], universe: u64, codec: ListCodec) -> u64 {
    1 + bounded_gap_list_len(list, universe, codec)
}

/// Cost in bits of encoding `target` referencing `reference`.
fn ref_cost(
    reference: &[u32],
    target: &[u32],
    n_lists: u64,
    universe: u64,
    codec: ListCodec,
) -> u64 {
    let (bits, extras) = diff_against(reference, target);
    // Parent field: upper bound of ⌈log₂ n⌉ bits (minimal binary).
    let parent_bits = if n_lists <= 1 {
        0
    } else {
        u64::from(64 - (n_lists - 1).leading_zeros())
    };
    1 + parent_bits + mask_len(&bits, codec) + bounded_gap_list_len(&extras, universe, codec)
}

/// Splits `target` into (copy bit vector over `reference`, extras).
fn diff_against(reference: &[u32], target: &[u32]) -> (Vec<bool>, Vec<u32>) {
    let mut bits = vec![false; reference.len()];
    let mut extras = Vec::new();
    let mut ri = 0usize;
    for &t in target {
        while ri < reference.len() && reference[ri] < t {
            ri += 1;
        }
        if ri < reference.len() && reference[ri] == t {
            bits[ri] = true;
            ri += 1;
        } else {
            extras.push(t);
        }
    }
    (bits, extras)
}

/// Size in bits of a run of ascending entries: first minimal-binary over
/// the universe, later entries as coded gaps.
fn ascending_entries_len(list: &[u32], universe: u64, k: u8) -> u64 {
    let mut total = 0;
    let mut prev: Option<u32> = None;
    for &x in list {
        total += match prev {
            None => codes::minimal_binary_len(u64::from(x), universe.max(1)),
            Some(p) => gap_code_len(u64::from(x - p - 1), k),
        };
        prev = Some(x);
    }
    total
}

fn write_ascending_entries(w: &mut BitWriter, list: &[u32], universe: u64, k: u8) {
    let mut prev: Option<u32> = None;
    for &x in list {
        match prev {
            None => codes::write_minimal_binary(w, u64::from(x), universe.max(1)),
            Some(p) => {
                assert!(x > p, "gap list must be strictly ascending");
                write_gap_code(w, u64::from(x - p - 1), k);
            }
        }
        prev = Some(x);
    }
}

fn read_ascending_entries(
    r: &mut BitReader<'_>,
    count: u64,
    universe: u64,
    k: u8,
    out: &mut Vec<u32>,
) -> Result<()> {
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let x = match prev {
            None => codes::read_minimal_binary(r, universe.max(1))?,
            Some(p) => {
                let g = read_gap_code(r, k)?;
                u64::from(p)
                    .checked_add(g)
                    .and_then(|v| v.checked_add(1))
                    .ok_or(SNodeError::Corrupt("gap overflow"))?
            }
        };
        if x > u64::from(u32::MAX) {
            return Err(SNodeError::Corrupt("list entry overflows u32"));
        }
        out.push(x as u32);
        prev = Some(x as u32);
    }
    Ok(())
}

/// Size in bits of [`write_bounded_gap_list`]'s output.
pub(crate) fn bounded_gap_list_len(list: &[u32], universe: u64, codec: ListCodec) -> u64 {
    let k = codec.zeta_k;
    let total = codes::gamma_len(list.len() as u64);
    if !codec.intervals {
        return total + ascending_entries_len(list, universe, k);
    }
    if list.is_empty() {
        return total;
    }
    let (intervals, residuals) = split_intervals(list);
    let mut total = total + codes::gamma_len(intervals.len() as u64);
    let mut prev_end: Option<u64> = None;
    for &(left, run) in &intervals {
        total += match prev_end {
            None => codes::minimal_binary_len(u64::from(left), universe.max(1)),
            Some(pe) => gap_code_len(u64::from(left) - pe - 1, k),
        };
        total += codes::gamma_len(u64::from(run - MIN_INTERVAL));
        prev_end = Some(u64::from(left) + u64::from(run));
    }
    total + ascending_entries_len(&residuals, universe, k)
}

/// A gap list whose first element is minimal-binary coded over the known
/// universe (γ would spend ~2·log₂ bits on it) and whose gaps are coded
/// with the codec's gap code (γ = ζ₁ by default, ζ_k otherwise).
///
/// With `codec.intervals`, maximal runs of ≥ [`MIN_INTERVAL`] consecutive
/// ids are pulled out first (BV interval runs): after γ(len) for a
/// non-empty list come γ(#intervals), then per interval its left extreme
/// (first minimal-binary, later ones gap-coded from the previous run's
/// end — maximality guarantees at least a one-id hole between runs) and
/// γ(run − MIN_INTERVAL); the leftover residuals follow as an ordinary
/// gap sequence whose count is implicit (len − Σ runs).
pub(crate) fn write_bounded_gap_list(
    w: &mut BitWriter,
    list: &[u32],
    universe: u64,
    codec: ListCodec,
) {
    let k = codec.zeta_k;
    codes::write_gamma(w, list.len() as u64);
    if !codec.intervals {
        write_ascending_entries(w, list, universe, k);
        return;
    }
    if list.is_empty() {
        return;
    }
    let (intervals, residuals) = split_intervals(list);
    codes::write_gamma(w, intervals.len() as u64);
    let mut prev_end: Option<u64> = None;
    for &(left, run) in &intervals {
        match prev_end {
            None => codes::write_minimal_binary(w, u64::from(left), universe.max(1)),
            Some(pe) => write_gap_code(w, u64::from(left) - pe - 1, k),
        }
        codes::write_gamma(w, u64::from(run - MIN_INTERVAL));
        prev_end = Some(u64::from(left) + u64::from(run));
    }
    write_ascending_entries(w, &residuals, universe, k);
}

/// Reads a list written by [`write_bounded_gap_list`].
pub(crate) fn read_bounded_gap_list(
    r: &mut BitReader<'_>,
    universe: u64,
    codec: ListCodec,
) -> Result<Vec<u32>> {
    let k = codec.zeta_k;
    let len = codes::read_gamma(r)?;
    if !codec.intervals {
        let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
        read_ascending_entries(r, len, universe, k, &mut out)?;
        return Ok(out);
    }
    if len == 0 {
        return Ok(Vec::new());
    }
    let num_intervals = codes::read_gamma(r)?;
    // Every interval covers at least MIN_INTERVAL of the declared entries.
    if num_intervals > len / u64::from(MIN_INTERVAL) {
        return Err(SNodeError::Corrupt("interval count exceeds list length"));
    }
    let mut intervals: Vec<(u32, u32)> = Vec::with_capacity((num_intervals as usize).min(1 << 18));
    let mut covered = 0u64;
    let mut prev_end: Option<u64> = None;
    for _ in 0..num_intervals {
        let left = match prev_end {
            None => codes::read_minimal_binary(r, universe.max(1))?,
            Some(pe) => {
                let g = read_gap_code(r, k)?;
                pe.checked_add(1)
                    .and_then(|v| v.checked_add(g))
                    .ok_or(SNodeError::Corrupt("interval gap overflow"))?
            }
        };
        let run = u64::from(MIN_INTERVAL)
            .checked_add(codes::read_gamma(r)?)
            .ok_or(SNodeError::Corrupt("interval length overflow"))?;
        covered = covered
            .checked_add(run)
            .filter(|&c| c <= len)
            .ok_or(SNodeError::Corrupt(
                "interval runs exceed declared list length",
            ))?;
        let last = left
            .checked_add(run - 1)
            .filter(|&l| l <= u64::from(u32::MAX))
            .ok_or(SNodeError::Corrupt("interval entry overflows u32"))?;
        intervals.push((left as u32, run as u32));
        prev_end = Some(last + 1);
    }
    let mut residuals = Vec::with_capacity(((len - covered) as usize).min(1 << 20));
    read_ascending_entries(r, len - covered, universe, k, &mut residuals)?;
    // Merge the expanded runs with the residuals. Both sequences are
    // ascending on their own; the final monotonicity sweep rejects any
    // cross-contamination (a residual landing inside or between runs out
    // of order) that the per-sequence decoding cannot see.
    let mut out: Vec<u32> = Vec::with_capacity(len.min(1 << 20) as usize);
    let mut ri = 0usize;
    for &(left, run) in &intervals {
        while ri < residuals.len() && residuals[ri] < left {
            out.push(residuals[ri]);
            ri += 1;
        }
        out.extend(left..=left + (run - 1));
    }
    out.extend_from_slice(&residuals[ri..]);
    if !out.windows(2).all(|p| p[0] < p[1]) {
        return Err(SNodeError::Corrupt("interval and residual entries overlap"));
    }
    Ok(out)
}

// --- Reference selection --------------------------------------------------

/// Work threshold below which parallel candidate-cost evaluation is not
/// worth the scheduling overhead: the number of (candidate, target) cost
/// probes a windowed selection performs.
const PAR_COST_PROBES_MIN: usize = 2048;

/// Chooses a parent (reference list) for each list, or `None` for plain.
fn choose_references(
    lists: &[Vec<u32>],
    universe: u64,
    mode: RefMode,
    codec: ListCodec,
    threads: u32,
) -> Vec<Option<u32>> {
    let n = lists.len();
    match mode {
        RefMode::Windowed(w)
            if threads > 1 && n.saturating_mul(w.max(1) as usize) >= PAR_COST_PROBES_MIN =>
        {
            choose_references_windowed_par(lists, universe, w.max(1) as usize, codec, threads)
        }
        RefMode::None => vec![None; n],
        RefMode::Windowed(w) => {
            let w = w.max(1) as usize;
            let mut parents = vec![None; n];
            let mut depth = vec![0u32; n];
            for y in 0..n {
                if lists[y].is_empty() {
                    continue; // plain empty list is 2 bits; nothing beats it
                }
                let mut best = plain_cost(&lists[y], universe, codec);
                for x in y.saturating_sub(w)..y {
                    if lists[x].is_empty() || depth[x] >= MAX_REF_CHAIN {
                        continue;
                    }
                    let c = ref_cost(&lists[x], &lists[y], n as u64, universe, codec);
                    if c < best {
                        best = c;
                        parents[y] = Some(x as u32);
                    }
                }
                if let Some(p) = parents[y] {
                    depth[y] = depth[p as usize] + 1;
                }
            }
            parents
        }
        RefMode::Exact => {
            // The affinity graph is quadratic in the list count and Edmonds
            // is O(V·E) on top; beyond this size the exact formulation is
            // exactly the intractability Adler & Mitzenmacher prove, so we
            // fall back to a wide window (the paper likewise only ever
            // applies the scheme to "much smaller" graphs).
            const EXACT_MAX_LISTS: usize = 512;
            if n > EXACT_MAX_LISTS {
                return choose_references(lists, universe, RefMode::Windowed(256), codec, threads);
            }
            // Affinity graph: node n is the virtual root. Building it is
            // the quadratic part (one ref_cost per ordered list pair);
            // each target's incoming-edge batch is independent, and
            // concatenating the batches in target order reproduces the
            // serial edge order exactly, so Edmonds sees the same input.
            let root = n;
            let edges: Vec<(u32, u32, u64)> = crate::par::par_chunks(threads, n, 8, |range| {
                let mut batch: Vec<(u32, u32, u64)> = Vec::new();
                for y in range {
                    batch.push((
                        root as u32,
                        y as u32,
                        plain_cost(&lists[y], universe, codec),
                    ));
                    if lists[y].is_empty() {
                        continue;
                    }
                    for x in 0..n {
                        if x == y || lists[x].is_empty() {
                            continue;
                        }
                        batch.push((
                            x as u32,
                            y as u32,
                            ref_cost(&lists[x], &lists[y], n as u64, universe, codec),
                        ));
                    }
                }
                batch
            })
            .into_iter()
            .flatten()
            .collect();
            let parent = min_arborescence(n + 1, root as u32, &edges);
            (0..n)
                .map(|y| {
                    let p = parent[y];
                    if p == root as u32 {
                        None
                    } else {
                        Some(p)
                    }
                })
                .collect()
        }
    }
}

/// Windowed selection with parallel candidate-cost evaluation.
///
/// All `(candidate, target)` costs are computed up front in parallel —
/// [`ref_cost`] is a pure function of the two lists, independent of the
/// chain-depth bookkeeping — then a serial pass applies the depth gate and
/// picks each target's cheapest candidate with the same iteration order
/// and tie-breaks as the serial loop, so the selection is identical. The
/// only extra work is costing candidates the serial loop would have
/// skipped on the depth gate, a small minority under [`MAX_REF_CHAIN`].
fn choose_references_windowed_par(
    lists: &[Vec<u32>],
    universe: u64,
    w: usize,
    codec: ListCodec,
    threads: u32,
) -> Vec<Option<u32>> {
    let n = lists.len();
    // (plain cost, candidate costs for x in window order) per target.
    let costs: Vec<(u64, Vec<u64>)> = crate::par::par_chunks(threads, n, 16, |range| {
        range
            .map(|y| {
                if lists[y].is_empty() {
                    return (0, Vec::new());
                }
                let plain = plain_cost(&lists[y], universe, codec);
                let cand: Vec<u64> = (y.saturating_sub(w)..y)
                    .map(|x| {
                        if lists[x].is_empty() {
                            u64::MAX
                        } else {
                            ref_cost(&lists[x], &lists[y], n as u64, universe, codec)
                        }
                    })
                    .collect();
                (plain, cand)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    let mut parents: Vec<Option<u32>> = vec![None; n];
    let mut depth = vec![0u32; n];
    for y in 0..n {
        if lists[y].is_empty() {
            continue;
        }
        let (plain, cand) = &costs[y];
        let mut best = *plain;
        for (ci, x) in (y.saturating_sub(w)..y).enumerate() {
            if lists[x].is_empty() || depth[x] >= MAX_REF_CHAIN {
                continue;
            }
            if cand[ci] < best {
                best = cand[ci];
                parents[y] = Some(x as u32);
            }
        }
        if let Some(p) = parents[y] {
            depth[y] = depth[p as usize] + 1;
        }
    }
    parents
}

/// Chu–Liu/Edmonds minimum-weight spanning arborescence.
///
/// Returns `parent[v]` for every `v != root` (`parent[root]` is arbitrary).
///
/// # Panics
/// Panics if some node is unreachable from `root` (cannot happen for
/// affinity graphs, which always include root edges).
#[allow(clippy::needless_range_loop)] // node ids index several parallel arrays
pub fn min_arborescence(n: usize, root: u32, edges: &[(u32, u32, u64)]) -> Vec<u32> {
    // Recursive contraction, implemented iteratively over "levels".
    // Each level stores: the edge list (with original-edge indices), and
    // for expansion, the cycle membership chosen at that level.
    struct Level {
        /// (from, to, weight, original edge index)
        edges: Vec<(u32, u32, u64, usize)>,
        /// Chosen min in-edge per node (index into `edges`), usize::MAX = none.
        in_edge: Vec<usize>,
        n: usize,
        root: u32,
    }

    let base_edges: Vec<(u32, u32, u64, usize)> = edges
        .iter()
        .enumerate()
        .filter(|(_, &(u, v, _))| u != v && v != root)
        .map(|(i, &(u, v, w))| (u, v, w, i))
        .collect();

    let mut levels: Vec<Level> = Vec::new();
    let mut cur_edges = base_edges;
    let mut cur_n = n;
    let mut cur_root = root;

    let chosen_original: Vec<usize> = loop {
        // Min incoming edge per node.
        const NONE: usize = usize::MAX;
        let mut in_edge = vec![NONE; cur_n];
        for (idx, &(u, v, w, _)) in cur_edges.iter().enumerate() {
            if u == v || v == cur_root {
                continue;
            }
            if in_edge[v as usize] == NONE || w < cur_edges[in_edge[v as usize]].2 {
                in_edge[v as usize] = idx;
            }
        }
        for v in 0..cur_n {
            assert!(
                v as u32 == cur_root || in_edge[v] != NONE,
                "node {v} unreachable from root"
            );
        }

        // Cycle detection over the chosen in-edges.
        let mut color = vec![0u8; cur_n]; // 0 unvisited, 1 in progress, 2 done
        let mut cycle_id = vec![u32::MAX; cur_n];
        let mut num_cycles = 0u32;
        for start in 0..cur_n {
            if color[start] != 0 || start as u32 == cur_root {
                continue;
            }
            // Walk parents until a visited node or the root.
            let mut path = Vec::new();
            let mut v = start;
            while color[v] == 0 && v as u32 != cur_root {
                color[v] = 1;
                path.push(v);
                v = cur_edges[in_edge[v]].0 as usize;
            }
            if color[v] == 1 {
                // Found a new cycle: v .. back to v along path (color 1 is
                // only ever assigned to nodes pushed onto this path).
                if let Some(pos) = path.iter().position(|&x| x == v) {
                    for &c in &path[pos..] {
                        cycle_id[c] = num_cycles;
                    }
                    num_cycles += 1;
                }
            }
            for &p in &path {
                color[p] = 2;
            }
        }

        if num_cycles == 0 {
            // Acyclic: record the solution at this level and unwind.
            levels.push(Level {
                edges: cur_edges,
                in_edge,
                n: cur_n,
                root: cur_root,
            });
            // Unwinding happens below.
            break unwind(&mut levels);
        }

        // Contract: nodes in cycles collapse; others renumber densely.
        let mut contract_map = vec![u32::MAX; cur_n];
        let mut next_id = 0u32;
        // Cycles first (stable ids 0..num_cycles? no—map each node).
        let mut cycle_node = vec![u32::MAX; num_cycles as usize];
        for v in 0..cur_n {
            if cycle_id[v] != u32::MAX {
                let c = cycle_id[v] as usize;
                if cycle_node[c] == u32::MAX {
                    cycle_node[c] = next_id;
                    next_id += 1;
                }
                contract_map[v] = cycle_node[c];
            } else {
                contract_map[v] = next_id;
                next_id += 1;
            }
        }
        let new_root = contract_map[cur_root as usize];
        let new_n = next_id as usize;

        // Build the contracted edge list with adjusted weights.
        let mut new_edges = Vec::with_capacity(cur_edges.len());
        for &(u, v, w, orig) in &cur_edges {
            let nu = contract_map[u as usize];
            let nv = contract_map[v as usize];
            if nu == nv {
                continue; // internal to a cycle
            }
            let adj = if cycle_id[v as usize] != u32::MAX {
                // Entering a cycle: subtract the weight of v's chosen edge.
                w - cur_edges[in_edge[v as usize]].2
            } else {
                w
            };
            new_edges.push((nu, nv, adj, orig));
        }

        levels.push(Level {
            edges: cur_edges,
            in_edge,
            n: cur_n,
            root: cur_root,
        });
        let _ = contract_map;
        cur_edges = new_edges;
        cur_n = new_n;
        cur_root = new_root;
    };

    /// Expands contractions back to original-graph parent choices.
    fn unwind(levels: &mut Vec<Level>) -> Vec<usize> {
        // At the deepest (acyclic) level the solution is its in_edge set,
        // expressed as original edge indices.
        let Some(last) = levels.pop() else {
            // Contraction always records at least one level before unwinding.
            return Vec::new();
        };
        let mut chosen: Vec<usize> = last
            .in_edge
            .iter()
            .enumerate()
            .filter(|&(v, &e)| v as u32 != last.root && e != usize::MAX)
            .map(|(_, &e)| last.edges[e].3)
            .collect();

        while let Some(level) = levels.pop() {
            // Which original edges were chosen so far? For each contracted
            // cycle, exactly one chosen edge enters it; that edge decides
            // which cycle-internal in-edge to drop.
            let chosen_set: std::collections::HashSet<usize> = chosen.iter().copied().collect();
            // For each node v at this level, did an external chosen edge
            // enter v? Map original edge -> target node at this level.
            let mut entered = vec![false; level.n];
            for &(_, v, _, orig) in &level.edges {
                if chosen_set.contains(&orig) {
                    entered[v as usize] = true;
                }
            }
            // Keep each node's own min in-edge unless an external chosen
            // edge already enters it.
            for v in 0..level.n {
                if v as u32 == level.root || entered[v] {
                    continue;
                }
                let e = level.in_edge[v];
                if e != usize::MAX {
                    chosen.push(level.edges[e].3);
                }
            }
        }
        chosen
    }

    // Convert chosen original edges into parent pointers.
    let mut parent = vec![root; n];
    for &idx in &chosen_original {
        let (u, v, _) = edges[idx];
        parent[v as usize] = u;
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_codec(
        lists: &[Vec<u32>],
        universe: u64,
        mode: RefMode,
        codec: ListCodec,
    ) -> EncodedLists {
        let enc = encode_lists(lists, universe, mode, codec);
        let reader =
            ListsReader::parse(&enc.bytes, enc.bit_len, Universe::Explicit(universe), codec)
                .unwrap();
        assert_eq!(reader.num_lists(), lists.len() as u32);
        assert_eq!(reader.universe(), universe);
        // decode_all
        let all = reader.decode_all().unwrap();
        assert_eq!(all.len(), lists.len());
        for (got, want) in all.iter().zip(lists) {
            assert_eq!(got, want);
        }
        // random access, reversed order
        for i in (0..lists.len() as u32).rev() {
            assert_eq!(reader.decode_list(i).unwrap(), lists[i as usize]);
        }
        enc
    }

    fn round_trip(lists: &[Vec<u32>], universe: u64, mode: RefMode) -> EncodedLists {
        round_trip_codec(lists, universe, mode, ListCodec::GAMMA)
    }

    /// Every distinct codec shape: γ baseline, ζ only, each feature alone,
    /// and the full stack.
    fn codec_cells() -> Vec<ListCodec> {
        let mut cells = Vec::new();
        for k in [1u8, 2, 3, 4, 7] {
            for iv in [false, true] {
                for cb in [false, true] {
                    cells.push(ListCodec {
                        zeta_k: k,
                        intervals: iv,
                        copy_blocks: cb,
                        singles: false,
                    });
                }
            }
        }
        cells
    }

    /// Pseudorandom sorted lists with a mix of dense runs (interval bait)
    /// and scattered entries.
    fn synth_lists(seed: u64, num: usize, universe: u64) -> Vec<Vec<u32>> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s >> 33
        };
        (0..num)
            .map(|_| {
                let mut l: Vec<u32> = Vec::new();
                for _ in 0..(next() % 6) {
                    // A consecutive run...
                    let start = (next() % universe.max(1)) as u32;
                    let run = (next() % 9) as u32;
                    for v in start..start.saturating_add(run) {
                        if u64::from(v) < universe {
                            l.push(v);
                        }
                    }
                    // ...and some scatter.
                    for _ in 0..(next() % 5) {
                        l.push((next() % universe.max(1)) as u32);
                    }
                }
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect()
    }

    fn modes() -> [RefMode; 4] {
        [
            RefMode::None,
            RefMode::Windowed(1),
            RefMode::Windowed(8),
            RefMode::Exact,
        ]
    }

    #[test]
    fn empty_collection() {
        for mode in modes() {
            round_trip(&[], 10, mode);
        }
    }

    #[test]
    fn empty_and_singleton_lists() {
        let lists = vec![vec![], vec![3], vec![], vec![0, 9]];
        for mode in modes() {
            round_trip(&lists, 10, mode);
        }
    }

    #[test]
    fn similar_lists_get_referenced_and_shrink() {
        // 20 lists, each sharing ~90% of a common base.
        let base: Vec<u32> = (0..50).map(|i| i * 7 % 400).collect::<Vec<_>>();
        let mut base = base;
        base.sort_unstable();
        base.dedup();
        let lists: Vec<Vec<u32>> = (0..20u32)
            .map(|i| {
                let mut l = base.clone();
                l.retain(|&x| x % 19 != i % 19);
                l.push(390 + i);
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let plain = round_trip(&lists, 512, RefMode::None);
        let windowed = round_trip(&lists, 512, RefMode::Windowed(8));
        let exact = round_trip(&lists, 512, RefMode::Exact);
        assert!(
            windowed.bit_len < plain.bit_len * 6 / 10,
            "windowed ({}) should be well under plain ({})",
            windowed.bit_len,
            plain.bit_len
        );
        // Exact mode minimises payload bits but may introduce forward
        // references, which force an explicit directory the windowed
        // layout avoids; allow it that structural overhead.
        let dir_overhead = 12 * lists.len() as u64;
        assert!(
            exact.bit_len <= windowed.bit_len + dir_overhead,
            "exact ({}) must not lose to windowed ({}) by more than its directory",
            exact.bit_len,
            windowed.bit_len
        );
    }

    #[test]
    fn dissimilar_lists_stay_plain_sized() {
        let lists: Vec<Vec<u32>> = (0..10u32)
            .map(|i| (0..8).map(|j| (i * 97 + j * 13) % 1000).collect::<Vec<_>>())
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let plain = round_trip(&lists, 1000, RefMode::None);
        let windowed = round_trip(&lists, 1000, RefMode::Windowed(8));
        // Reference encoding must never be (much) worse than plain; the
        // directory and mode bits are identical, so sizes should be close.
        assert!(windowed.bit_len <= plain.bit_len);
    }

    #[test]
    fn identical_lists_compress_to_near_nothing() {
        let base: Vec<u32> = (10..40).collect();
        let lists = vec![base.clone(); 30];
        let enc = round_trip(&lists, 64, RefMode::Windowed(4));
        let plain = encode_lists(&lists, 64, RefMode::None, ListCodec::GAMMA);
        // Each referenced copy costs ~18 bits (mode + parent + RLE'd all-ones
        // mask + empty extras) vs ~55 plain, but the per-list directory entry
        // is shared overhead — net ≈ 2x, not the asymptotic |list| ratio.
        assert!(
            enc.bit_len < plain.bit_len * 3 / 5,
            "30 identical lists must shrink well below plain: {} vs {}",
            enc.bit_len,
            plain.bit_len
        );
    }

    #[test]
    fn exact_mode_chains_through_best_reference() {
        // l0 plain; l1 = l0 + noise; l2 = l1 + noise: chain expected.
        let l0: Vec<u32> = (0..30).map(|i| i * 3).collect();
        let mut l1 = l0.clone();
        l1.push(91);
        l1.sort_unstable();
        let mut l2 = l1.clone();
        l2.push(92);
        l2.sort_unstable();
        let lists = vec![l2.clone(), l0.clone(), l1.clone()]; // order scrambled
        round_trip(&lists, 100, RefMode::Exact);
    }

    #[test]
    fn single_list_truncation_is_detected() {
        let lists = vec![vec![1u32, 5, 9]];
        let enc = encode_lists(&lists, 10, RefMode::None, ListCodec::GAMMA);
        for cut in 1..enc.bit_len {
            match ListsReader::parse(&enc.bytes, cut, Universe::Explicit(10), ListCodec::GAMMA) {
                Err(_) => {}
                Ok(r) => {
                    // Header may parse; decoding must fail or return the
                    // original (never panic, never wrong data silently — a
                    // cut inside the final gamma code of the payload can
                    // only produce an error because lengths are encoded).
                    let _ = r.decode_list(0);
                }
            }
        }
    }

    #[test]
    fn arborescence_simple_star() {
        // root=3; direct edges cheap.
        let edges = [
            (3u32, 0u32, 5u64),
            (3, 1, 5),
            (3, 2, 5),
            (0, 1, 1),
            (1, 2, 1),
        ];
        let parent = min_arborescence(4, 3, &edges);
        assert_eq!(parent[0], 3);
        assert_eq!(parent[1], 0);
        assert_eq!(parent[2], 1);
    }

    #[test]
    fn arborescence_breaks_cycles() {
        // 0 <-> 1 cheap cycle; root must break in through the cheaper side.
        let edges = [(2u32, 0u32, 10u64), (2, 1, 4), (0, 1, 1), (1, 0, 1)];
        let parent = min_arborescence(3, 2, &edges);
        // Optimal: root->1 (4) + 1->0 (1) = 5.
        assert_eq!(parent[1], 2);
        assert_eq!(parent[0], 1);
    }

    #[test]
    fn arborescence_nested_cycles() {
        // A 3-cycle with expensive root entries; Edmonds must contract.
        let edges = [
            (3u32, 0u32, 100u64),
            (3, 1, 8),
            (3, 2, 100),
            (0, 1, 1),
            (1, 2, 1),
            (2, 0, 1),
            (0, 2, 5),
        ];
        let parent = min_arborescence(4, 3, &edges);
        // Expected: 3->1 (8), 1->2 (1), 2->0 (1): total 10.
        assert_eq!(parent[1], 3);
        assert_eq!(parent[2], 1);
        assert_eq!(parent[0], 2);
    }

    #[test]
    fn arborescence_matches_brute_force_on_small_graphs() {
        // Exhaustive check on random 5-node graphs.
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _trial in 0..30 {
            let n = 5usize;
            let root = 0u32;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in 1..n as u32 {
                    if u != v {
                        edges.push((u, v, next() % 50 + 1));
                    }
                }
            }
            let parent = min_arborescence(n, root, &edges);
            let got: u64 = (1..n)
                .map(|v| {
                    edges
                        .iter()
                        .filter(|&&(u, t, _)| u == parent[v] && t == v as u32)
                        .map(|&(_, _, w)| w)
                        .min()
                        .expect("parent edge exists")
                })
                .sum();
            // Brute force: all parent-function combinations that are trees.
            let mut best = u64::MAX;
            let choices: Vec<Vec<(u32, u64)>> = (1..n)
                .map(|v| {
                    edges
                        .iter()
                        .filter(|&&(_, t, _)| t == v as u32)
                        .map(|&(u, _, w)| (u, w))
                        .collect()
                })
                .collect();
            fn rec(
                v: usize,
                n: usize,
                parent: &mut Vec<u32>,
                choices: &[Vec<(u32, u64)>],
                acc: u64,
                best: &mut u64,
            ) {
                if v == n {
                    // Check tree-ness: every node reaches root 0.
                    for start in 1..n {
                        let mut cur = start as u32;
                        let mut steps = 0;
                        while cur != 0 {
                            cur = parent[cur as usize];
                            steps += 1;
                            if steps > n {
                                return; // cycle
                            }
                        }
                    }
                    *best = (*best).min(acc);
                    return;
                }
                for &(u, w) in &choices[v - 1] {
                    parent[v] = u;
                    rec(v + 1, n, parent, choices, acc + w, best);
                }
            }
            let mut p = vec![0u32; n];
            rec(1, n, &mut p, &choices, 0, &mut best);
            assert_eq!(got, best, "edmonds found {got}, brute force {best}");
        }
    }

    #[test]
    fn encoded_size_bits_matches_encode() {
        let lists = vec![vec![1u32, 2, 3], vec![1, 2, 4], vec![7]];
        for mode in modes() {
            for codec in codec_cells() {
                assert_eq!(
                    encoded_size_bits(&lists, 10, mode, codec),
                    encode_lists(&lists, 10, mode, codec).bit_len,
                    "{codec} {mode:?}"
                );
            }
        }
    }

    #[test]
    fn every_codec_cell_round_trips() {
        let universe = 700u64;
        let lists = synth_lists(0xAB1E, 40, universe);
        for codec in codec_cells() {
            for mode in modes() {
                round_trip_codec(&lists, universe, mode, codec);
            }
        }
    }

    #[test]
    fn codec_cells_decode_identically_to_gamma() {
        // Cross-codec equivalence: whatever the cell, decoding returns the
        // exact lists the γ baseline encodes and decodes.
        let universe = 900u64;
        let lists = synth_lists(0xFACADE, 60, universe);
        let base = encode_lists(&lists, universe, RefMode::Windowed(8), ListCodec::GAMMA);
        let base_lists = ListsReader::parse(
            &base.bytes,
            base.bit_len,
            Universe::Explicit(universe),
            ListCodec::GAMMA,
        )
        .unwrap()
        .decode_all()
        .unwrap();
        for codec in codec_cells() {
            let enc = encode_lists(&lists, universe, RefMode::Windowed(8), codec);
            let got =
                ListsReader::parse(&enc.bytes, enc.bit_len, Universe::Explicit(universe), codec)
                    .unwrap()
                    .decode_all()
                    .unwrap();
            assert_eq!(got, base_lists, "{codec}");
        }
    }

    #[test]
    fn intervals_win_on_dense_runs() {
        // Lists dominated by long consecutive runs: the interval form must
        // beat plain γ gaps.
        let lists: Vec<Vec<u32>> = (0..20u32)
            .map(|i| {
                let start = i * 40;
                (start..start + 30).chain([900 + i, 950 + i]).collect()
            })
            .collect();
        let gamma = encode_lists(&lists, 1000, RefMode::None, ListCodec::GAMMA);
        let iv = ListCodec {
            intervals: true,
            ..ListCodec::GAMMA
        };
        let with_iv = encode_lists(&lists, 1000, RefMode::None, iv);
        assert!(
            with_iv.bit_len < gamma.bit_len,
            "intervals {} must beat gamma {} on dense runs",
            with_iv.bit_len,
            gamma.bit_len
        );
    }

    #[test]
    fn interval_stream_truncation_and_bit_flips_never_panic() {
        let universe = 300u64;
        let lists = synth_lists(0x5EED, 12, universe);
        let codec = ListCodec {
            zeta_k: 3,
            intervals: true,
            copy_blocks: true,
            singles: false,
        };
        let enc = encode_lists(&lists, universe, RefMode::Windowed(4), codec);
        // Truncation at every bit boundary.
        for cut in 0..enc.bit_len {
            if let Ok(r) = ListsReader::parse(&enc.bytes, cut, Universe::Explicit(universe), codec)
            {
                for i in 0..r.num_lists() {
                    let _ = r.decode_list(i);
                }
            }
        }
        // Single-bit flips: decode either errors or yields sorted lists —
        // never a panic, never an out-of-order list.
        for flip in 0..enc.bit_len.min(512) {
            let mut bytes = enc.bytes.clone();
            bytes[(flip / 8) as usize] ^= 0x80 >> (flip % 8);
            if let Ok(r) =
                ListsReader::parse(&bytes, enc.bit_len, Universe::Explicit(universe), codec)
            {
                for i in 0..r.num_lists() {
                    if let Ok(l) = r.decode_list(i) {
                        assert!(l.windows(2).all(|p| p[0] < p[1]), "flip={flip} list={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn split_intervals_extracts_maximal_runs() {
        let (iv, res) = split_intervals(&[1, 2, 3, 4, 6, 10, 11, 12, 13, 14, 20]);
        assert_eq!(iv, vec![(1, 4), (10, 5)]);
        assert_eq!(res, vec![6, 20]);
        let (iv, res) = split_intervals(&[5, 7, 9]);
        assert!(iv.is_empty());
        assert_eq!(res, vec![5, 7, 9]);
        let (iv, res) = split_intervals(&[]);
        assert!(iv.is_empty());
        assert!(res.is_empty());
    }
}
